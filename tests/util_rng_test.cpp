// Tests for the deterministic RNG substrate (util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace srsr {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Pcg32, IsDeterministic) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next_u32() == b.next_u32());
  EXPECT_LT(equal, 5);
}

TEST(Pcg32, NextBelowStaysInRange) {
  Pcg32 rng(7);
  for (u32 bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Pcg32, NextBelowOneIsAlwaysZero) {
  Pcg32 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Pcg32, NextBelowZeroThrows) {
  Pcg32 rng(7);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Pcg32, NextBelowIsRoughlyUniform) {
  Pcg32 rng(99);
  constexpr u32 kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBound * 0.9);
    EXPECT_LT(c, kDraws / kBound * 1.1);
  }
}

TEST(Pcg32, NextRealInUnitInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const f64 v = rng.next_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32, NextRealMeanIsHalf) {
  Pcg32 rng(5);
  f64 sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_real();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Pcg32, NextRealRangeRespectsBounds) {
  Pcg32 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const f64 v = rng.next_real(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Pcg32, NextBoolProbabilityZeroAndOne) {
  Pcg32 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Pcg32, NextBoolFrequencyMatchesP) {
  Pcg32 rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<f64>(hits) / kDraws, 0.3, 0.01);
}

TEST(SampleWithoutReplacement, ProducesDistinctSortedValues) {
  Pcg32 rng(3);
  const auto sample = sample_without_replacement(rng, 100, 20);
  ASSERT_EQ(sample.size(), 20u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  const std::set<u32> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const u32 v : sample) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacement, FullSampleIsPermutationOfRange) {
  Pcg32 rng(3);
  const auto sample = sample_without_replacement(rng, 50, 50);
  ASSERT_EQ(sample.size(), 50u);
  for (u32 i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacement, KZeroIsEmpty) {
  Pcg32 rng(3);
  EXPECT_TRUE(sample_without_replacement(rng, 10, 0).empty());
}

TEST(SampleWithoutReplacement, KGreaterThanNThrows) {
  Pcg32 rng(3);
  EXPECT_THROW(sample_without_replacement(rng, 5, 6), Error);
}

TEST(SampleWithoutReplacement, IsApproximatelyUniform) {
  // Each element of [0,10) should appear in a 5-subset with p = 0.5.
  Pcg32 rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t)
    for (const u32 v : sample_without_replacement(rng, 10, 5)) ++counts[v];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<f64>(c) / kTrials, 0.5, 0.02);
}

TEST(Shuffle, PreservesMultiset) {
  Pcg32 rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(rng, v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Shuffle, HandlesEmptyAndSingleton) {
  Pcg32 rng(23);
  std::vector<int> empty;
  shuffle(rng, empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  shuffle(rng, one);
  EXPECT_EQ(one[0], 42);
}

TEST(ZipfSampler, ValuesInRange) {
  ZipfSampler zipf(100, 1.5);
  Pcg32 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const u32 v = zipf.sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfSampler, RankOneIsMostFrequent) {
  ZipfSampler zipf(50, 1.2);
  Pcg32 rng(2);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  EXPECT_GT(counts[1], counts[50] * 5);
}

TEST(ZipfSampler, MatchesTheoreticalHeadProbability) {
  // For n=2, s=1: P(1) = 1/(1 + 0.5) = 2/3.
  ZipfSampler zipf(2, 1.0);
  Pcg32 rng(4);
  int ones = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ones += (zipf.sample(rng) == 1);
  EXPECT_NEAR(static_cast<f64>(ones) / kDraws, 2.0 / 3.0, 0.01);
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
  EXPECT_THROW(ZipfSampler(10, 0.0), Error);
  EXPECT_THROW(ZipfSampler(10, -1.0), Error);
}

TEST(AliasSampler, MatchesWeights) {
  const std::vector<f64> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler alias(weights);
  Pcg32 rng(6);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[alias.sample(rng)];
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(static_cast<f64>(counts[i]) / kDraws, weights[i] / 10.0, 0.01);
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  AliasSampler alias({0.0, 1.0, 0.0, 1.0});
  Pcg32 rng(8);
  for (int i = 0; i < 10000; ++i) {
    const u32 v = alias.sample(rng);
    EXPECT_TRUE(v == 1 || v == 3);
  }
}

TEST(AliasSampler, SingleElement) {
  AliasSampler alias({5.0});
  Pcg32 rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.sample(rng), 0u);
}

TEST(AliasSampler, RejectsBadWeights) {
  EXPECT_THROW(AliasSampler({}), Error);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), Error);
  EXPECT_THROW(AliasSampler({1.0, -1.0}), Error);
}

// Property sweep: bounded draws stay unbiased across bounds.
class NextBelowUniformity : public ::testing::TestWithParam<u32> {};

TEST_P(NextBelowUniformity, ChiSquareWithinBounds) {
  const u32 bound = GetParam();
  Pcg32 rng(777 + bound);
  constexpr int kDraws = 50000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(bound)];
  const f64 expected = static_cast<f64>(kDraws) / bound;
  f64 chi2 = 0.0;
  for (const int c : counts) {
    const f64 d = c - expected;
    chi2 += d * d / expected;
  }
  // Very loose bound: chi2 should be near (bound-1); 3x is far beyond
  // any plausible statistical fluctuation for a healthy generator.
  EXPECT_LT(chi2, 3.0 * bound + 30.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, NextBelowUniformity,
                         ::testing::Values(2u, 3u, 7u, 16u, 100u, 257u));

}  // namespace
}  // namespace srsr
