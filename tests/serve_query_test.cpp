// Tests for RankSnapshot and QueryEngine (serve/snapshot.hpp,
// serve/query.hpp): index semantics, host addressing, latency
// telemetry, and the acceptance contract that compare() reproduces the
// spam-demotion deltas of the figure harnesses bitwise (same graph,
// same kappa config, both the lazy-view and the materialized path).
#include "serve/query.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/srsr.hpp"
#include "graph/webgen.hpp"
#include "obs/metrics.hpp"
#include "rank/solvers.hpp"
#include "serve/snapshot.hpp"
#include "serve/store.hpp"

namespace srsr::serve {
namespace {

RankSnapshot snapshot_of(std::vector<f64> scores,
                         std::vector<std::string> hosts = {}) {
  SnapshotMeta meta;
  meta.kappa_policy = "test";
  return RankSnapshot(std::move(scores), std::move(hosts), std::move(meta));
}

graph::WebCorpus small_corpus(u32 sources = 120, u32 spam = 6) {
  graph::WebGenConfig cfg;
  cfg.num_sources = sources;
  cfg.num_spam_sources = spam;
  cfg.seed = 77;
  return graph::generate_web_corpus(cfg);
}

core::SrsrConfig tight_config(
    core::ThrottleMode mode = core::ThrottleMode::kTeleportDiscard) {
  core::SrsrConfig cfg;
  cfg.convergence.tolerance = 1e-12;
  cfg.convergence.max_iterations = 5000;
  cfg.throttle_mode = mode;
  return cfg;
}

TEST(RankSnapshot, TopIndexOrdersByScoreThenId) {
  //                     s0   s1   s2    s3   (s1 == s3: tie -> id order)
  const auto snap = snapshot_of({0.1, 0.3, 0.25, 0.3, 0.05});
  const auto top = snap.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_EQ(snap.rank_of(1), 1u);
  EXPECT_EQ(snap.rank_of(3), 2u);
  EXPECT_EQ(snap.rank_of(2), 3u);
  EXPECT_EQ(snap.rank_of(0), 4u);
  EXPECT_EQ(snap.rank_of(4), 5u);
  // k beyond n clamps.
  EXPECT_EQ(snap.top(99).size(), 5u);
}

TEST(RankSnapshot, SynthesizesHostNamesAndResolvesThem) {
  const auto snap = snapshot_of({0.5, 0.5});
  EXPECT_EQ(snap.host(1), "s1");
  ASSERT_TRUE(snap.id_of("s0").has_value());
  EXPECT_EQ(*snap.id_of("s0"), 0u);
  EXPECT_FALSE(snap.id_of("unknown.example").has_value());

  const auto named = snapshot_of({0.5, 0.5}, {"a.example", "b.example"});
  EXPECT_EQ(*named.id_of("b.example"), 1u);
}

TEST(RankSnapshot, ChecksumCoversScores) {
  const auto a = snapshot_of({0.25, 0.75});
  EXPECT_TRUE(a.verify_checksum());
  const auto b = snapshot_of({0.75, 0.25});
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(QueryEngine, ServesNulloptBeforeFirstPublish) {
  SnapshotStore store;
  const QueryEngine engine(store);
  EXPECT_FALSE(engine.score(0u).has_value());
  EXPECT_FALSE(engine.score(std::string("a")).has_value());
  EXPECT_FALSE(engine.rank_of(0u).has_value());
  EXPECT_FALSE(engine.compare(0u).has_value());
  EXPECT_TRUE(engine.top_k(5).empty());
}

TEST(QueryEngine, AnswersAllQueryShapes) {
  SnapshotStore store;
  store.publish(snapshot_of({0.1, 0.6, 0.3}, {"a", "b", "c"}));
  const QueryEngine engine(store);

  EXPECT_EQ(*engine.score(std::string("b")), 0.6);
  EXPECT_EQ(*engine.score(1u), 0.6);
  EXPECT_FALSE(engine.score(std::string("zz")).has_value());
  EXPECT_FALSE(engine.score(99u).has_value());

  const auto top = engine.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].host, "b");
  EXPECT_EQ(top[0].rank, 1u);
  EXPECT_EQ(top[1].host, "c");
  EXPECT_EQ(top[1].score, 0.3);

  EXPECT_EQ(*engine.rank_of(std::string("a")), 3u);
}

TEST(QueryEngine, CompareDiffsBaselineAgainstLive) {
  SnapshotStore store;
  const auto baseline = std::make_shared<const RankSnapshot>(
      snapshot_of({0.5, 0.3, 0.2}, {"a", "b", "c"}));
  store.publish(snapshot_of({0.1, 0.5, 0.4}, {"a", "b", "c"}));
  const QueryEngine engine(store, baseline);

  const auto c = engine.compare(std::string("a"));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->baseline_score, 0.5);
  EXPECT_EQ(c->score, 0.1);
  EXPECT_EQ(c->delta, 0.1 - 0.5);
  EXPECT_EQ(c->baseline_rank, 1u);
  EXPECT_EQ(c->rank, 3u);
  EXPECT_EQ(c->rank_change, 2);  // demoted two positions
  EXPECT_EQ(c->epoch, 1u);

  // No baseline -> nullopt, not a crash.
  const QueryEngine bare(store);
  EXPECT_FALSE(bare.compare(0u).has_value());
}

// Acceptance contract: serving a snapshot must not perturb sigma. The
// lazy-view snapshot is bitwise-identical to a direct model.rank()
// call (the figure harnesses' path), and the materialized-path
// snapshot is bitwise-identical to a direct solve of the materialized
// T'' — so compare() deltas reproduce the fig4-style demotion deltas
// exactly, not approximately.
TEST(QueryEngine, CompareReproducesFigureDeltasBitwise) {
  const auto corpus = small_corpus();
  const core::SourceMap map = core::SourceMap::from_corpus(corpus);
  // Teleport-discard mode: throttled outflow leaves the system, so
  // every ring member genuinely loses mass (self-absorb would let a
  // member keep part of it). It is also `srsr_cli serve`'s default.
  const core::SpamResilientSourceRank model(corpus.pages, map,
                                            tight_config());

  // Throttle the labeled spam ring at kappa = 0.9 (a fig4c-style
  // config).
  std::vector<f64> kappa(model.num_sources(), 0.0);
  for (const NodeId s : corpus.spam_sources()) kappa[s] = 0.9;

  const auto direct_base = model.rank_baseline();
  const auto direct_throttled = model.rank(kappa);

  SnapshotStore store;
  const std::vector<f64> zeros(model.num_sources(), 0.0);
  SnapshotBuild base_build;
  base_build.policy = "baseline";
  const auto baseline = std::make_shared<const RankSnapshot>(
      make_snapshot(model, zeros, corpus.source_hosts, base_build));
  SnapshotBuild throttled_build;
  throttled_build.policy = "spam_ring_0.9";
  store.publish(make_snapshot(model, kappa, corpus.source_hosts,
                              throttled_build));
  const QueryEngine engine(store, baseline);

  for (NodeId s = 0; s < model.num_sources(); ++s) {
    const auto c = engine.compare(s);
    ASSERT_TRUE(c.has_value());
    // Bitwise: the snapshot path may not introduce even a ulp of
    // drift relative to the batch path the figures report.
    EXPECT_EQ(c->baseline_score, direct_base.scores[s]);
    EXPECT_EQ(c->score, direct_throttled.scores[s]);
    EXPECT_EQ(c->delta, direct_throttled.scores[s] - direct_base.scores[s]);
  }

  // Every fully-labeled spam source is demoted by the throttle.
  for (const NodeId s : corpus.spam_sources()) {
    const auto c = engine.compare(s);
    EXPECT_LT(c->delta, 0.0) << "spam source " << s << " was not demoted";
  }

  // The materialized path agrees with a direct solve of the explicit
  // T'' matrix, bitwise as well.
  SnapshotBuild mat_build;
  mat_build.policy = "materialized";
  mat_build.path = SolvePath::kMaterialized;
  const auto mat =
      make_snapshot(model, kappa, corpus.source_hosts, mat_build);
  rank::SolverConfig sc;
  sc.alpha = model.config().alpha;
  sc.convergence = model.config().convergence;
  const auto direct_mat =
      rank::power_solve(model.throttled_matrix(kappa), sc);
  ASSERT_EQ(mat.scores().size(), direct_mat.scores.size());
  for (NodeId s = 0; s < model.num_sources(); ++s)
    EXPECT_EQ(mat.score(s), direct_mat.scores[s]);
}

TEST(QueryEngine, RecordsLatencyHistogramsWhenMetricsEnabled) {
  SnapshotStore store;
  store.publish(snapshot_of({0.2, 0.8}));
  const QueryEngine engine(store);

  obs::set_metrics_enabled(true);
  (void)engine.score(0u);
  (void)engine.top_k(2);
  (void)engine.rank_of(1u);
  obs::set_metrics_enabled(false);

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_GE(reg.counter("srsr.serve.query.score.count").value(), 1u);
  EXPECT_GE(reg.histogram("srsr.serve.query.top_k.seconds").count(), 1u);
  EXPECT_GE(reg.histogram("srsr.serve.query.rank_of.seconds").count(), 1u);
  reg.reset_values();
}

}  // namespace
}  // namespace srsr::serve
