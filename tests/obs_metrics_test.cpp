// Tests for the metrics registry (obs/metrics.hpp): instrument
// correctness, histogram bucketing, name validation, and exact counts
// under concurrent recording.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace srsr::obs {
namespace {

/// Restores the collection switch on scope exit (tests share a process)
/// and zeroes the registry so counts from earlier tests don't leak in.
struct MetricsEnabledGuard {
  explicit MetricsEnabledGuard(bool on) : saved_(metrics_enabled()) {
    set_metrics_enabled(on);
  }
  ~MetricsEnabledGuard() {
    MetricsRegistry::instance().reset_values();
    set_metrics_enabled(saved_);
  }

 private:
  bool saved_;
};

TEST(ObsMetrics, DisabledRecordsAreNoops) {
  MetricsEnabledGuard guard(false);
  auto& reg = MetricsRegistry::instance();
  auto& c = reg.counter("srsr.test.disabled.count");
  auto& g = reg.gauge("srsr.test.disabled.gauge");
  auto& h = reg.histogram("srsr.test.disabled.hist", {1.0, 2.0});
  c.add();
  c.add(100);
  g.set(3.5);
  g.add(1.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(ObsMetrics, CounterAccumulates) {
  MetricsEnabledGuard guard(true);
  auto& c = MetricsRegistry::instance().counter("srsr.test.counter.basic");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  MetricsEnabledGuard guard(true);
  auto& g = MetricsRegistry::instance().gauge("srsr.test.gauge.basic");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
  g.set(-7.25);
  EXPECT_EQ(g.value(), -7.25);
}

TEST(ObsMetrics, HistogramBucketing) {
  MetricsEnabledGuard guard(true);
  auto& h = MetricsRegistry::instance().histogram("srsr.test.hist.buckets",
                                                  {1.0, 2.0, 4.0});
  // Bucket rule: first b with v <= bound[b]; values above every bound
  // land in the overflow bucket.
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 5.0);
}

TEST(ObsMetrics, HistogramRejectsBadBounds) {
  auto& reg = MetricsRegistry::instance();
  // Omitted bounds fall back to the default seconds buckets.
  auto& d = reg.histogram("srsr.test.hist.defaulted");
  EXPECT_EQ(d.bounds(), default_seconds_buckets());
  EXPECT_THROW(reg.histogram("srsr.test.hist.unsorted", {2.0, 1.0}), Error);
  EXPECT_THROW(reg.histogram("srsr.test.hist.dup", {1.0, 1.0}), Error);
}

TEST(ObsMetrics, NameValidation) {
  auto& reg = MetricsRegistry::instance();
  EXPECT_THROW(reg.counter("rank.iterations"), Error);   // missing prefix
  EXPECT_THROW(reg.counter("srsr."), Error);             // empty remainder
  EXPECT_THROW(reg.counter("srsr.rank."), Error);        // trailing dot
  EXPECT_NO_THROW(reg.counter("srsr.test.names.ok"));
}

TEST(ObsMetrics, KindCollisionThrows) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("srsr.test.collide.a");
  EXPECT_THROW(reg.gauge("srsr.test.collide.a"), Error);
  EXPECT_THROW(reg.histogram("srsr.test.collide.a", {1.0}), Error);
  reg.gauge("srsr.test.collide.b");
  EXPECT_THROW(reg.counter("srsr.test.collide.b"), Error);
}

TEST(ObsMetrics, SameNameReturnsSameHandle) {
  auto& reg = MetricsRegistry::instance();
  auto& a = reg.counter("srsr.test.handle.stable");
  auto& b = reg.counter("srsr.test.handle.stable");
  EXPECT_EQ(&a, &b);
  auto& h1 = reg.histogram("srsr.test.handle.hist", {1.0, 2.0});
  // Later lookups ignore the bounds argument and return the original.
  auto& h2 = reg.histogram("srsr.test.handle.hist", {5.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(ObsMetrics, ConcurrentCountsAreExactParallelFor) {
  MetricsEnabledGuard guard(true);
  auto& reg = MetricsRegistry::instance();
  auto& c = reg.counter("srsr.test.concurrent.pf");
  auto& h = reg.histogram("srsr.test.concurrent.pf_hist", {0.5});
  constexpr std::size_t kN = 100000;
  parallel_for(0, kN, [&](std::size_t i) {
    c.add();
    h.observe(i % 2 == 0 ? 0.25 : 1.0);
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(h.count(), kN);
  const auto counts = h.counts();
  EXPECT_EQ(counts[0], kN / 2);  // the 0.25 observations
  EXPECT_EQ(counts[1], kN / 2);  // the 1.0 overflow observations
}

TEST(ObsMetrics, ConcurrentCountsAreExactStdThread) {
  MetricsEnabledGuard guard(true);
  auto& c = MetricsRegistry::instance().counter("srsr.test.concurrent.threads");
  auto& g = MetricsRegistry::instance().gauge("srsr.test.concurrent.gsum");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1.0);  // CAS-loop accumulate must not lose updates
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(g.value(), static_cast<f64>(kThreads) * kPerThread);
}

TEST(ObsMetrics, SnapshotReflectsValues) {
  MetricsEnabledGuard guard(true);
  auto& reg = MetricsRegistry::instance();
  reg.counter("srsr.test.snap.count").add(7);
  reg.gauge("srsr.test.snap.gauge").set(1.25);
  reg.histogram("srsr.test.snap.hist", {1.0}).observe(0.5);
  const auto snap = reg.snapshot();
  EXPECT_FALSE(snap.empty());
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& [name, v] : snap.counters)
    if (name == "srsr.test.snap.count") {
      saw_counter = true;
      EXPECT_EQ(v, 7u);
    }
  for (const auto& [name, v] : snap.gauges)
    if (name == "srsr.test.snap.gauge") {
      saw_gauge = true;
      EXPECT_EQ(v, 1.25);
    }
  for (const auto& [name, h] : snap.histograms)
    if (name == "srsr.test.snap.hist") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1u);
      ASSERT_EQ(h.counts.size(), 2u);
      EXPECT_EQ(h.counts[0], 1u);
    }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(ObsMetrics, SnapshotJsonIsWellFormedish) {
  MetricsEnabledGuard guard(true);
  auto& reg = MetricsRegistry::instance();
  reg.counter("srsr.test.json.count").add(3);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"srsr.test.json.count\":3"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ObsMetrics, ResetValuesZeroesButKeepsHandles) {
  MetricsEnabledGuard guard(true);
  auto& reg = MetricsRegistry::instance();
  auto& c = reg.counter("srsr.test.reset.count");
  auto& h = reg.histogram("srsr.test.reset.hist", {1.0});
  c.add(9);
  h.observe(0.5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.counts()[0], 0u);
  c.add();  // handle still live and usable
  EXPECT_EQ(c.value(), 1u);
}

}  // namespace
}  // namespace srsr::obs
