// Tests for warm-started solves (PageRankConfig::initial /
// SolverConfig::initial): the fixed point is unchanged; iteration
// counts drop when restarting near the solution.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "rank/pagerank.hpp"
#include "rank/solvers.hpp"
#include "util/rng.hpp"

namespace srsr::rank {
namespace {

PageRankConfig pr_tight() {
  PageRankConfig cfg;
  cfg.convergence.tolerance = 1e-11;
  cfg.convergence.max_iterations = 5000;
  return cfg;
}

TEST(WarmStart, SameFixedPointAsColdStart) {
  Pcg32 rng(91);
  const auto g = graph::erdos_renyi(100, 0.05, rng);
  const auto cold = pagerank(g, pr_tight());
  PageRankConfig warm_cfg = pr_tight();
  // Start from a wildly non-uniform (but valid) vector.
  std::vector<f64> init(g.num_nodes(), 0.0);
  init[0] = 1.0;
  warm_cfg.initial = init;
  const auto warm = pagerank(g, warm_cfg);
  for (std::size_t i = 0; i < cold.scores.size(); ++i)
    EXPECT_NEAR(cold.scores[i], warm.scores[i], 1e-8);
}

TEST(WarmStart, RestartingAtSolutionConvergesImmediately) {
  Pcg32 rng(92);
  const auto g = graph::erdos_renyi(100, 0.05, rng);
  const auto cold = pagerank(g, pr_tight());
  PageRankConfig warm_cfg = pr_tight();
  warm_cfg.initial = cold.scores;
  const auto warm = pagerank(g, warm_cfg);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 3u);
}

TEST(WarmStart, FewerIterationsAfterSmallEdit) {
  // The attack-harness access pattern: re-rank after adding a handful
  // of edges, warm-started from the previous solution.
  Pcg32 rng(93);
  const auto g = graph::erdos_renyi(300, 0.03, rng);
  const auto base = pagerank(g, pr_tight());
  const auto edited = graph::with_edges(g, {{1, 0}, {2, 0}, {3, 0}});
  const auto cold = pagerank(edited, pr_tight());
  PageRankConfig warm_cfg = pr_tight();
  warm_cfg.initial = base.scores;
  const auto warm = pagerank(edited, warm_cfg);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
  for (std::size_t i = 0; i < cold.scores.size(); ++i)
    EXPECT_NEAR(cold.scores[i], warm.scores[i], 1e-8);
}

TEST(WarmStart, UnnormalizedInitialIsNormalized) {
  const auto g = graph::cycle(5);
  PageRankConfig a = pr_tight(), b = pr_tight();
  a.initial = std::vector<f64>{1, 1, 1, 1, 1};
  b.initial = std::vector<f64>{10, 10, 10, 10, 10};
  const auto ra = pagerank(g, a);
  const auto rb = pagerank(g, b);
  EXPECT_EQ(ra.iterations, rb.iterations);
}

TEST(WarmStart, RejectsInvalidInitialVectors) {
  const auto g = graph::cycle(3);
  PageRankConfig cfg;
  cfg.initial = std::vector<f64>{1.0, 1.0};  // wrong size
  EXPECT_THROW(pagerank(g, cfg), Error);
  cfg.initial = std::vector<f64>{0.0, 0.0, 0.0};  // no mass
  EXPECT_THROW(pagerank(g, cfg), Error);
  cfg.initial = std::vector<f64>{1.0, -1.0, 1.0};  // negative
  EXPECT_THROW(pagerank(g, cfg), Error);
}

TEST(WarmStart, WeightedSolversSupportInitialToo) {
  Pcg32 rng(94);
  const auto g = graph::add_self_loops(graph::erdos_renyi(80, 0.06, rng));
  const auto m = StochasticMatrix::uniform_from_graph(g);
  SolverConfig sc;
  sc.convergence.tolerance = 1e-11;
  sc.convergence.max_iterations = 5000;
  const auto cold = power_solve(m, sc);
  SolverConfig warm = sc;
  warm.initial = cold.scores;
  const auto restarted = power_solve(m, warm);
  EXPECT_LE(restarted.iterations, 3u);
  for (std::size_t i = 0; i < cold.scores.size(); ++i)
    EXPECT_NEAR(cold.scores[i], restarted.scores[i], 1e-9);

  SolverConfig bad = sc;
  bad.initial = std::vector<f64>{1.0};
  EXPECT_THROW(power_solve(m, bad), Error);
}

}  // namespace
}  // namespace srsr::rank
