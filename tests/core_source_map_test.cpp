// Tests for SourceMap (core/source_map.hpp).
#include "core/source_map.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/webgen.hpp"

namespace srsr::core {
namespace {

TEST(SourceMap, BasicAssignment) {
  const SourceMap map({0, 0, 1, 1, 2});
  EXPECT_EQ(map.num_pages(), 5u);
  EXPECT_EQ(map.num_sources(), 3u);
  EXPECT_EQ(map.source_of(0), 0u);
  EXPECT_EQ(map.source_of(4), 2u);
  EXPECT_EQ(map.source_page_count()[1], 2u);
}

TEST(SourceMap, RejectsSparseSourceIds) {
  // Source 1 missing: ids must be dense.
  EXPECT_THROW(SourceMap({0, 2}), Error);
}

TEST(SourceMap, SourceOfOutOfRangeThrows) {
  const SourceMap map({0, 1});
  EXPECT_THROW(map.source_of(2), Error);
}

TEST(SourceMap, IdentityMap) {
  const SourceMap map = SourceMap::identity(4);
  EXPECT_EQ(map.num_sources(), 4u);
  for (NodeId p = 0; p < 4; ++p) EXPECT_EQ(map.source_of(p), p);
}

TEST(SourceMap, FromUrlsGroupsByHost) {
  const SourceMap map = SourceMap::from_urls({
      "http://a.example/1",
      "http://b.example/1",
      "http://a.example/2",
      "https://A.example/3",
  });
  EXPECT_EQ(map.num_sources(), 2u);
  EXPECT_EQ(map.source_of(0), map.source_of(2));
  EXPECT_EQ(map.source_of(0), map.source_of(3));
  EXPECT_NE(map.source_of(0), map.source_of(1));
}

TEST(SourceMap, FromCorpusMatchesGenerator) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 50;
  cfg.seed = 7;
  const auto corpus = graph::generate_web_corpus(cfg);
  const SourceMap map = SourceMap::from_corpus(corpus);
  EXPECT_EQ(map.num_pages(), corpus.num_pages());
  EXPECT_EQ(map.num_sources(), corpus.num_sources());
  for (u32 s = 0; s < 50; ++s)
    EXPECT_EQ(map.source_page_count()[s], corpus.source_page_count[s]);
}

TEST(SourceMap, PagesBySourceIsInverse) {
  const SourceMap map({0, 1, 0, 1, 1});
  const auto& pages = map.pages_by_source();
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[0], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(pages[1], (std::vector<NodeId>{1, 3, 4}));
}

TEST(SourceMap, LocalityAllIntra) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const SourceMap map({0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(map.locality(b.build()), 1.0);
}

TEST(SourceMap, LocalityAllInter) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  const SourceMap map({0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(map.locality(b.build()), 0.0);
}

TEST(SourceMap, LocalityMixed) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);  // intra
  b.add_edge(0, 2);  // inter
  const SourceMap map({0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(map.locality(b.build()), 0.5);
}

TEST(SourceMap, LocalityGraphSizeMismatchThrows) {
  const SourceMap map({0, 0});
  EXPECT_THROW(map.locality(graph::Graph()), Error);
}

}  // namespace
}  // namespace srsr::core
