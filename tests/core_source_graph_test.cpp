// Tests for SourceGraph: source-level topology and the consensus
// edge weighting of Sec. 3.2.
#include "core/source_graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/webgen.hpp"

namespace srsr::core {
namespace {

// Fixture: 2 sources; source 0 = pages {0,1,2}, source 1 = pages {3,4}.
struct TwoSources {
  TwoSources() : map({0, 0, 0, 1, 1}) {}
  SourceMap map;
};

TEST(SourceGraph, TopologyFromPageEdges) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  b.add_edge(0, 1);  // intra source 0 -> self edge
  b.add_edge(1, 3);  // source 0 -> source 1
  const SourceGraph sg(b.build(), fix.map);
  EXPECT_EQ(sg.num_sources(), 2u);
  EXPECT_TRUE(sg.topology().has_edge(0, 0));
  EXPECT_TRUE(sg.topology().has_edge(0, 1));
  EXPECT_FALSE(sg.topology().has_edge(1, 0));
}

TEST(SourceGraph, ConsensusCountsUniquePages) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  // Pages 0 and 1 both link into source 1; page 0 links to BOTH pages
  // of source 1 but must count once (the indicator-OR).
  b.add_edge(0, 3);
  b.add_edge(0, 4);
  b.add_edge(1, 3);
  const SourceGraph sg(b.build(), fix.map);
  EXPECT_EQ(sg.consensus(0, 1), 2u);  // two unique pages
  EXPECT_EQ(sg.consensus(0, 0), 0u);  // no intra links
  EXPECT_EQ(sg.consensus(1, 0), 0u);
}

TEST(SourceGraph, ConsensusSelfEdgeFromIntraLinks) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const SourceGraph sg(b.build(), fix.map);
  EXPECT_EQ(sg.consensus(0, 0), 3u);  // three unique intra-linking pages
}

TEST(SourceGraph, PageSelfLoopCountsForSourceSelfEdge) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  b.add_edge(3, 3);
  const SourceGraph sg(b.build(), fix.map);
  EXPECT_EQ(sg.consensus(1, 1), 1u);
}

TEST(SourceGraph, UniformMatrixSplitsEvenly) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  b.add_edge(0, 1);  // self edge
  b.add_edge(0, 3);  // to source 1
  const SourceGraph sg(b.build(), fix.map);
  const auto t = sg.uniform_matrix(/*with_self_edges=*/false);
  EXPECT_DOUBLE_EQ(t.weight(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.weight(0, 1), 0.5);
}

TEST(SourceGraph, ConsensusMatrixWeightsByUniquePages) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  // 3 pages link intra (self consensus 3); 1 page links to source 1.
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const SourceGraph sg(b.build(), fix.map);
  const auto t = sg.consensus_matrix(/*with_self_edges=*/false);
  EXPECT_DOUBLE_EQ(t.weight(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(t.weight(0, 1), 0.25);
}

TEST(SourceGraph, SelfEdgeAugmentationAddsZeroWeightSelf) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  b.add_edge(0, 3);  // only an inter-source edge
  const SourceGraph sg(b.build(), fix.map);
  const auto t = sg.consensus_matrix(/*with_self_edges=*/true);
  // Self edge exists in the pattern with weight 0.
  bool found_self = false;
  const auto cs = t.row_cols(0);
  for (const NodeId c : cs) found_self |= (c == 0);
  EXPECT_TRUE(found_self);
  EXPECT_DOUBLE_EQ(t.weight(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.weight(0, 1), 1.0);
}

TEST(SourceGraph, AugmentationTurnsEmptySourceIntoSelfLoop) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  b.add_edge(0, 3);  // source 1 has no out-links at all
  const SourceGraph sg(b.build(), fix.map);
  const auto t = sg.consensus_matrix(/*with_self_edges=*/true);
  EXPECT_DOUBLE_EQ(t.weight(1, 1), 1.0);
  EXPECT_TRUE(t.dangling_rows().empty());
  // Without augmentation the row dangles.
  const auto bare = sg.consensus_matrix(/*with_self_edges=*/false);
  EXPECT_TRUE(bare.is_dangling_row(1));
}

TEST(SourceGraph, HijackResistanceOfConsensusWeights) {
  // The Sec. 3.2 property: capturing ONE page of a big source moves the
  // consensus weight far less than it moves a uniform page-level share.
  const u32 kPages = 20;
  std::vector<NodeId> assign(kPages + 1, 0);
  assign[kPages] = 1;  // one page in the spam source
  const SourceMap map(assign);
  graph::GraphBuilder b(kPages + 1);
  // All 20 legit pages interlink (self edge consensus 20)...
  for (NodeId p = 0; p < kPages; ++p) b.add_edge(p, (p + 1) % kPages);
  // ...and ONE hijacked page links to the spam source.
  b.add_edge(0, kPages);
  const SourceGraph sg(b.build(), map);
  const auto t = sg.consensus_matrix(true);
  EXPECT_DOUBLE_EQ(t.weight(0, 1), 1.0 / 21.0);  // 1 of 21 page-votes
  EXPECT_GT(t.weight(0, 0), 0.95 * (20.0 / 21.0));
}

TEST(SourceGraph, PageGraphSizeMismatchThrows) {
  const SourceMap map({0, 0});
  graph::GraphBuilder b(3);
  EXPECT_THROW(SourceGraph(b.build(), map), Error);
}

TEST(SourceGraph, IdentityMapGivesPageTopology) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 0);
  const auto pages = b.build();
  const SourceMap map = SourceMap::identity(4);
  const SourceGraph sg(pages, map);
  EXPECT_EQ(sg.topology(), pages);
  for (const u32 c : sg.consensus_counts()) EXPECT_EQ(c, 1u);
}

TEST(SourceGraph, ConsensusOutOfRangeThrows) {
  TwoSources fix;
  graph::GraphBuilder b(5);
  const SourceGraph sg(b.build(), fix.map);
  EXPECT_THROW(sg.consensus(2, 0), Error);
}

TEST(SourceGraph, WebCorpusConsensusRowsAreStochastic) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 120;
  cfg.num_spam_sources = 6;
  cfg.seed = 99;
  const auto corpus = graph::generate_web_corpus(cfg);
  const SourceMap map = SourceMap::from_corpus(corpus);
  const SourceGraph sg(corpus.pages, map);
  for (const bool with_self : {false, true}) {
    for (const bool consensus : {false, true}) {
      const auto m = consensus ? sg.consensus_matrix(with_self)
                               : sg.uniform_matrix(with_self);
      for (NodeId r = 0; r < m.num_rows(); ++r) {
        if (m.is_dangling_row(r)) continue;
        EXPECT_NEAR(m.row_sum(r), 1.0, 1e-9);
      }
      if (with_self) EXPECT_TRUE(m.dangling_rows().empty());
    }
  }
}

}  // namespace
}  // namespace srsr::core
