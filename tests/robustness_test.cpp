// Failure-injection and robustness tests: corrupted inputs must fail
// with srsr::Error (or, at worst, produce garbage data) — never crash,
// hang, or scribble memory. Also pins determinism across repeated runs
// of the OpenMP-parallel kernels.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/srsr.hpp"
#include "graph/builder.hpp"
#include "graph/compressed.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/webgen.hpp"
#include "rank/pagerank.hpp"
#include "util/rng.hpp"

namespace srsr {
namespace {

TEST(Robustness, BinaryGraphBitFlipsNeverCrash) {
  Pcg32 rng(71);
  const auto g = graph::erdos_renyi(200, 0.05, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("srsr_fuzz_" + std::to_string(::getpid()) + ".bin"))
          .string();
  graph::write_binary(path, g);

  // Read the file, flip one byte at a time at random offsets, and make
  // sure the reader either throws srsr::Error or returns a graph.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  u32 threw = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto corrupted = bytes;
    const std::size_t pos = rng.next_below(static_cast<u32>(bytes.size()));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^
                                       (1 << rng.next_below(8)));
    std::ofstream out(path, std::ios::binary);
    out.write(corrupted.data(),
              static_cast<std::streamsize>(corrupted.size()));
    out.close();
    try {
      const auto loaded = graph::read_binary(path);
      // Structural invariants must hold if it parsed at all.
      EXPECT_LE(loaded.num_edges(), loaded.offsets().back());
    } catch (const Error&) {
      ++threw;
    } catch (const std::bad_alloc&) {
      ++threw;  // absurd counts from corrupt headers may exhaust reserve
    } catch (const std::length_error&) {
      ++threw;
    }
  }
  // Most header/structure corruptions must be caught explicitly.
  EXPECT_GT(threw, 10u);
  std::filesystem::remove(path);
}

TEST(Robustness, EdgeListGarbageLinesAllThrow) {
  for (const char* bad : {"1", "a b", "1 2 3", "-1 2", "1 99999999999999999999",
                          "4294967295 0"}) {
    std::stringstream ss(bad);
    EXPECT_THROW(graph::read_edge_list(ss), Error) << "input: " << bad;
  }
}

TEST(Robustness, HugeNodeCountBinaryHeaderRejected) {
  // Hand-craft a header claiming 2^40 nodes: must throw, not allocate.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("srsr_huge_" + std::to_string(::getpid()) + ".bin"))
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out.write("SRSRGRPH", 8);
    const u32 version = 1;
    out.write(reinterpret_cast<const char*>(&version), 4);
    const u64 n = 1ULL << 40, m = 0;
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&m), 8);
  }
  EXPECT_THROW(graph::read_binary(path), Error);
  std::filesystem::remove(path);
}

TEST(Robustness, ParallelKernelsAreRunToRunDeterministic) {
  // OpenMP kernels must produce IDENTICAL bits on repeated runs (the
  // per-element pull form has no cross-thread accumulation races; the
  // deficit reduction is a static-schedule sum whose order is fixed for
  // a fixed thread count).
  graph::WebGenConfig cfg;
  cfg.num_sources = 200;
  cfg.num_spam_sources = 10;
  cfg.seed = 72;
  const auto corpus = graph::generate_web_corpus(cfg);
  const auto a = rank::pagerank(corpus.pages);
  const auto b = rank::pagerank(corpus.pages);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.iterations, b.iterations);

  const core::SourceMap map = core::SourceMap::from_corpus(corpus);
  const core::SpamResilientSourceRank model(corpus.pages, map);
  EXPECT_EQ(model.rank_baseline().scores, model.rank_baseline().scores);
}

TEST(Robustness, ThrottleOnThrottledOutputIsStillValid) {
  // Feeding a discard-mode (substochastic) matrix back through the
  // transform must not blow up or create mass.
  graph::WebGenConfig cfg;
  cfg.num_sources = 80;
  cfg.seed = 73;
  const auto corpus = graph::generate_web_corpus(cfg);
  const core::SourceMap map = core::SourceMap::from_corpus(corpus);
  const core::SourceGraph sg(corpus.pages, map);
  const auto tprime = sg.consensus_matrix(true);
  std::vector<f64> kappa(sg.num_sources(), 0.4);
  const auto once = core::apply_throttle(tprime, kappa,
                                         core::ThrottleMode::kTeleportDiscard);
  const auto twice = core::apply_throttle(once, kappa,
                                          core::ThrottleMode::kTeleportDiscard);
  for (NodeId r = 0; r < twice.num_rows(); ++r)
    EXPECT_LE(twice.row_sum(r), once.row_sum(r) + 1e-12);
}

TEST(Robustness, RankingEmptyAndSingletonCorpora) {
  // Degenerate corpora must work end to end.
  graph::WebGenConfig cfg;
  cfg.num_sources = 1;
  cfg.num_spam_sources = 0;
  cfg.seed = 74;
  const auto corpus = graph::generate_web_corpus(cfg);
  const core::SourceMap map = core::SourceMap::from_corpus(corpus);
  const core::SpamResilientSourceRank model(corpus.pages, map);
  const auto r = model.rank_baseline();
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-12);
}

TEST(Robustness, CompressedGraphSurvivesAdversarialShapes) {
  // Shapes chosen to stress every encoder branch at once.
  graph::GraphBuilder b(600);
  // Max-length intervals.
  for (NodeId v = 0; v < 500; ++v) b.add_edge(599, v);
  // Alternating singletons (worst case for interval detection).
  for (NodeId v = 0; v < 500; v += 2) b.add_edge(598, v);
  // Long identical runs for reference chains.
  for (NodeId u = 100; u < 400; ++u) {
    b.add_edge(u, 0);
    b.add_edge(u, 599);
  }
  // Self-loops sprinkled in.
  for (NodeId u = 0; u < 600; u += 7) b.add_edge(u, u);
  const auto g = b.build();
  const graph::CompressedGraph c(g);
  EXPECT_EQ(c.decompress(), g);
}

}  // namespace
}  // namespace srsr
