// Tests for RecomputePipeline (serve/recompute.hpp): background
// publishes, warm-start behaviour, graceful degradation on failed
// solves (old snapshot stays live), label-driven kappa derivation,
// the coalescing accounting invariant, and run-report surfacing. Runs
// under the "tsan" ctest label: the worker thread plus drain()/stats()
// callers exercise the pipeline's locking for real.
#include "serve/recompute.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/srsr.hpp"
#include "graph/webgen.hpp"
#include "obs/report.hpp"
#include "serve/snapshot.hpp"
#include "serve/store.hpp"

namespace srsr::serve {
namespace {

graph::WebCorpus small_corpus(u32 sources = 100, u32 spam = 5) {
  graph::WebGenConfig cfg;
  cfg.num_sources = sources;
  cfg.num_spam_sources = spam;
  cfg.seed = 31;
  return graph::generate_web_corpus(cfg);
}

/// Model + store + corpus bundle so each test starts from one line.
struct Fixture {
  explicit Fixture(core::SrsrConfig cfg = tight_config())
      : corpus(small_corpus()),
        map(core::SourceMap::from_corpus(corpus)),
        model(corpus.pages, map, cfg) {}

  static core::SrsrConfig tight_config() {
    core::SrsrConfig cfg;
    cfg.convergence.tolerance = 1e-12;
    cfg.convergence.max_iterations = 5000;
    return cfg;
  }

  std::vector<f64> ring_kappa(f64 strength) const {
    std::vector<f64> kappa(model.num_sources(), 0.0);
    for (const NodeId s : corpus.spam_sources()) kappa[s] = strength;
    return kappa;
  }

  graph::WebCorpus corpus;
  core::SourceMap map;
  core::SpamResilientSourceRank model;
  SnapshotStore store;
};

TEST(RecomputePipeline, FirstPublishIsColdAndBitwiseReproducible) {
  Fixture fx;
  RecomputePipeline pipeline(fx.model, fx.corpus.source_hosts, fx.store);

  pipeline.submit(fx.ring_kappa(0.8), "ring_0.8");
  pipeline.drain();

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.last_epoch, 1u);
  EXPECT_TRUE(stats.last_error.empty());

  const SnapshotPtr snap = fx.store.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->meta().epoch, 1u);
  EXPECT_EQ(snap->meta().kappa_policy, "ring_0.8");
  EXPECT_FALSE(snap->meta().warm_started);  // no live sigma yet
  EXPECT_TRUE(snap->meta().converged);
  EXPECT_TRUE(snap->verify_checksum());

  // Cold pipeline solve == direct batch solve, bitwise.
  const auto direct = fx.model.rank(fx.ring_kappa(0.8));
  ASSERT_EQ(snap->scores().size(), direct.scores.size());
  for (NodeId s = 0; s < fx.model.num_sources(); ++s)
    EXPECT_EQ(snap->score(s), direct.scores[s]);
}

TEST(RecomputePipeline, WarmStartReachesSameFixedPointFaster) {
  Fixture fx;
  RecomputePipeline pipeline(fx.model, fx.corpus.source_hosts, fx.store);

  pipeline.submit(fx.ring_kappa(0.8));
  pipeline.drain();
  const u32 cold_iterations = fx.store.current()->meta().iterations;

  // Re-solving the same policy warm-started from its own fixed point
  // must converge almost immediately, to the same distribution.
  pipeline.submit(fx.ring_kappa(0.8));
  pipeline.drain();
  const SnapshotPtr warm = fx.store.current();
  EXPECT_EQ(warm->meta().epoch, 2u);
  EXPECT_TRUE(warm->meta().warm_started);
  EXPECT_TRUE(warm->meta().converged);
  EXPECT_LT(warm->meta().iterations, cold_iterations);

  const auto direct = fx.model.rank(fx.ring_kappa(0.8));
  for (NodeId s = 0; s < fx.model.num_sources(); ++s)
    EXPECT_NEAR(warm->score(s), direct.scores[s], 1e-9);
}

TEST(RecomputePipeline, FailedSolveKeepsOldSnapshotLive) {
  Fixture fx;
  RecomputePipeline pipeline(fx.model, fx.corpus.source_hosts, fx.store);

  pipeline.submit(fx.ring_kappa(0.8));
  pipeline.drain();
  const SnapshotPtr before = fx.store.current();
  const u64 checksum = before->checksum();

  // kappa = 2.0 violates the [0, 1] contract: validate_kappa throws
  // inside the worker, which must count the failure and publish nothing.
  pipeline.submit(fx.ring_kappa(2.0), "broken");
  pipeline.drain();

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_FALSE(stats.last_error.empty());
  EXPECT_EQ(stats.last_epoch, 1u);

  const SnapshotPtr after = fx.store.current();
  EXPECT_EQ(after->meta().epoch, 1u);
  EXPECT_EQ(after->checksum(), checksum);
  EXPECT_EQ(after.get(), before.get());  // the very same object

  // A later good update recovers and clears last_error.
  pipeline.submit(fx.ring_kappa(0.5));
  pipeline.drain();
  EXPECT_EQ(fx.store.current()->meta().epoch, 2u);
  EXPECT_TRUE(pipeline.stats().last_error.empty());
}

TEST(RecomputePipeline, NonConvergenceIsFailureOnlyWhenRequired) {
  core::SrsrConfig starved;
  starved.convergence.tolerance = 1e-15;
  starved.convergence.max_iterations = 1;
  Fixture fx(starved);

  {
    RecomputePipeline strict(fx.model, fx.corpus.source_hosts, fx.store);
    strict.submit(fx.ring_kappa(0.5));
    strict.drain();
    EXPECT_EQ(strict.stats().failed, 1u);
    EXPECT_EQ(strict.stats().published, 0u);
    EXPECT_NE(strict.stats().last_error.find("converge"), std::string::npos);
    EXPECT_EQ(fx.store.current(), nullptr);  // nothing ever published
  }

  RecomputeConfig lenient;
  lenient.require_convergence = false;
  RecomputePipeline loose(fx.model, fx.corpus.source_hosts, fx.store,
                          lenient);
  loose.submit(fx.ring_kappa(0.5));
  loose.drain();
  EXPECT_EQ(loose.stats().published, 1u);
  const SnapshotPtr snap = fx.store.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_FALSE(snap->meta().converged);
}

TEST(RecomputePipeline, SpamLabelsDeriveAndPublishKappaPolicy) {
  Fixture fx;
  RecomputePipeline pipeline(fx.model, fx.corpus.source_hosts, fx.store);

  pipeline.submit_spam_labels(fx.corpus.spam_sources(), 10);
  pipeline.drain();

  const SnapshotPtr snap = fx.store.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->meta().kappa_policy, "top_10_proximity");
  // kappa_top_k fully throttles top_k sources -> mass == top_k.
  EXPECT_EQ(snap->meta().kappa_mass, 10.0);
  EXPECT_TRUE(snap->meta().converged);
}

TEST(RecomputePipeline, AccountingInvariantHoldsUnderCoalescing) {
  Fixture fx;
  RecomputePipeline pipeline(fx.model, fx.corpus.source_hosts, fx.store);

  // Flood the queue faster than solves complete: some updates coalesce
  // away (which ones depends on scheduling), but every submitted update
  // is accounted for exactly once.
  constexpr u64 kUpdates = 24;
  for (u64 i = 0; i < kUpdates; ++i)
    pipeline.submit(fx.ring_kappa(0.5 + 0.02 * static_cast<f64>(i)));
  pipeline.drain();

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.submitted, kUpdates);
  EXPECT_EQ(stats.published + stats.failed + stats.coalesced, kUpdates);
  EXPECT_GE(stats.published, 1u);
  EXPECT_EQ(stats.failed, 0u);
  // The newest update always survives coalescing, so the live snapshot
  // is the last-submitted policy's fixed point.
  const auto direct = fx.model.rank(
      fx.ring_kappa(0.5 + 0.02 * static_cast<f64>(kUpdates - 1)));
  const SnapshotPtr snap = fx.store.current();
  for (NodeId s = 0; s < fx.model.num_sources(); ++s)
    EXPECT_NEAR(snap->score(s), direct.scores[s], 1e-9);
}

TEST(RecomputePipeline, ReportIntoSurfacesOutcome) {
  Fixture fx;
  RecomputePipeline pipeline(fx.model, fx.corpus.source_hosts, fx.store);
  pipeline.submit(fx.ring_kappa(0.8));
  pipeline.drain();
  pipeline.submit(fx.ring_kappa(2.0));
  pipeline.drain();

  obs::RunReport report("serve_test");
  pipeline.report_into(report);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"serve.published\":1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.coalesced\":0"), std::string::npos);
  EXPECT_NE(json.find("\"serve.last_epoch\":1"), std::string::npos);
  EXPECT_NE(json.find("serve.last_error"), std::string::npos);
}

TEST(RecomputePipeline, StopIsIdempotentAndDropsQueue) {
  Fixture fx;
  auto pipeline = std::make_unique<RecomputePipeline>(
      fx.model, fx.corpus.source_hosts, fx.store);
  pipeline->submit(fx.ring_kappa(0.5));
  pipeline->stop();
  pipeline->stop();  // second stop is a no-op, not a crash
  // Submits after stop are refused, not queued.
  pipeline->submit(fx.ring_kappa(0.6));
  const auto stats = pipeline->stats();
  EXPECT_EQ(stats.published + stats.failed + stats.coalesced,
            stats.submitted);
  pipeline.reset();  // destructor after explicit stop is safe too
}

}  // namespace
}  // namespace srsr::serve
