// Tests for the synthetic web-corpus generator (graph/webgen.hpp) —
// the documented substitution for the paper's WB2001/UK2002/IT2004
// crawls. These tests pin the structural properties the experiments
// rely on.
#include "graph/webgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace srsr::graph {
namespace {

WebGenConfig small_config() {
  WebGenConfig cfg;
  cfg.num_sources = 300;
  cfg.num_spam_sources = 20;
  cfg.max_pages_per_source = 60;
  cfg.mean_out_degree = 8.0;
  cfg.seed = 1234;
  return cfg;
}

TEST(WebGen, SideTablesAreConsistent) {
  const WebCorpus c = generate_web_corpus(small_config());
  EXPECT_EQ(c.num_sources(), 300u);
  EXPECT_EQ(c.page_source.size(), c.pages.num_nodes());
  EXPECT_EQ(c.source_hosts.size(), 300u);
  EXPECT_EQ(c.source_is_spam.size(), 300u);
  u64 total = 0;
  for (u32 s = 0; s < c.num_sources(); ++s) {
    EXPECT_GE(c.source_page_count[s], 1u);
    total += c.source_page_count[s];
  }
  EXPECT_EQ(total, c.num_pages());
}

TEST(WebGen, PageSourceMatchesContiguousBlocks) {
  const WebCorpus c = generate_web_corpus(small_config());
  for (u32 s = 0; s < c.num_sources(); ++s) {
    const NodeId first = c.source_first_page[s];
    for (u32 i = 0; i < c.source_page_count[s]; ++i)
      EXPECT_EQ(c.page_source[first + i], s);
  }
}

TEST(WebGen, IsDeterministicInSeed) {
  const WebCorpus a = generate_web_corpus(small_config());
  const WebCorpus b = generate_web_corpus(small_config());
  EXPECT_EQ(a.pages, b.pages);
  EXPECT_EQ(a.page_source, b.page_source);
  EXPECT_EQ(a.source_is_spam, b.source_is_spam);
}

TEST(WebGen, DifferentSeedsDiffer) {
  WebGenConfig cfg = small_config();
  const WebCorpus a = generate_web_corpus(cfg);
  cfg.seed = 999;
  const WebCorpus b = generate_web_corpus(cfg);
  EXPECT_NE(a.pages, b.pages);
}

TEST(WebGen, SpamSourceCountMatchesConfig) {
  const WebCorpus c = generate_web_corpus(small_config());
  EXPECT_EQ(c.spam_sources().size(), 20u);
  u32 labeled = 0;
  for (const u8 flag : c.source_is_spam) labeled += flag;
  EXPECT_EQ(labeled, 20u);
}

TEST(WebGen, LocalityNearConfiguredValue) {
  WebGenConfig cfg = small_config();
  cfg.num_sources = 500;
  cfg.num_spam_sources = 0;  // spam structure perturbs locality
  cfg.hijack_rate = 0.0;
  const WebCorpus c = generate_web_corpus(cfg);
  const f64 locality = c.measured_locality();
  // Single-page sources force some links inter-source, so measured
  // locality sits below the configured probability; it must still be
  // clearly web-like (the paper's cited studies report ~0.75-0.85).
  EXPECT_GT(locality, 0.55);
  EXPECT_LT(locality, 0.95);
}

TEST(WebGen, SourceSizesAreHeavyTailed) {
  WebGenConfig cfg = small_config();
  cfg.num_sources = 1000;
  const WebCorpus c = generate_web_corpus(cfg);
  u32 max_size = 0, ones = 0;
  for (const u32 n : c.source_page_count) {
    max_size = std::max(max_size, n);
    ones += (n == 1);
  }
  EXPECT_GT(max_size, 20u);   // a heavy tail exists
  EXPECT_GT(ones, 300u);      // and a large mass of tiny sources
}

TEST(WebGen, HostNamesAreUniqueAndLabelNeutral) {
  const WebCorpus c = generate_web_corpus(small_config());
  std::set<std::string> hosts(c.source_hosts.begin(), c.source_hosts.end());
  EXPECT_EQ(hosts.size(), c.source_hosts.size());
  for (const auto& h : c.source_hosts)
    EXPECT_EQ(h.find("spam"), std::string::npos);
}

TEST(WebGen, SomeDanglingPagesExist) {
  const WebCorpus c = generate_web_corpus(small_config());
  EXPECT_GT(c.pages.num_dangling(), 0u);
  EXPECT_LT(c.pages.num_dangling(), c.num_pages() / 10);
}

TEST(WebGen, HijackedLinksReachSpamCluster) {
  WebGenConfig cfg = small_config();
  cfg.hijack_rate = 0.05;
  const WebCorpus c = generate_web_corpus(cfg);
  u64 legit_to_spam = 0;
  for (NodeId p = 0; p < c.num_pages(); ++p) {
    if (c.source_is_spam[c.page_source[p]]) continue;
    for (const NodeId q : c.pages.out_neighbors(p))
      legit_to_spam += c.source_is_spam[c.page_source[q]];
  }
  EXPECT_GT(legit_to_spam, 0u);
}

TEST(WebGen, NoHijackMeansAlmostNoLegitToSpamLinks) {
  WebGenConfig cfg = small_config();
  cfg.hijack_rate = 0.0;
  const WebCorpus c = generate_web_corpus(cfg);
  u64 legit_to_spam = 0;
  u64 total = 0;
  for (NodeId p = 0; p < c.num_pages(); ++p) {
    if (c.source_is_spam[c.page_source[p]]) continue;
    for (const NodeId q : c.pages.out_neighbors(p)) {
      ++total;
      legit_to_spam += c.source_is_spam[c.page_source[q]];
    }
  }
  // Spam popularity is epsilon: organic legit->spam links are rare.
  EXPECT_LT(static_cast<f64>(legit_to_spam), 0.001 * static_cast<f64>(total));
}

TEST(WebGen, SpamClusterIsDenselyIntraLinked) {
  const WebCorpus c = generate_web_corpus(small_config());
  // Front page of each spam source collects farm links from siblings.
  for (const NodeId s : c.spam_sources()) {
    if (c.source_page_count[s] < 3) continue;
    const NodeId front = c.source_first_page[s];
    const auto in = c.pages.in_degrees();
    EXPECT_GE(in[front], c.source_page_count[s] - 1)
        << "spam front page should collect a farm";
    break;  // one witness suffices; in_degrees() is O(E)
  }
}

TEST(WebGen, RejectsBadConfigs) {
  WebGenConfig cfg = small_config();
  cfg.num_spam_sources = cfg.num_sources;
  EXPECT_THROW(generate_web_corpus(cfg), Error);
  cfg = small_config();
  cfg.num_sources = 0;
  EXPECT_THROW(generate_web_corpus(cfg), Error);
  cfg = small_config();
  cfg.intra_locality = 1.5;
  EXPECT_THROW(generate_web_corpus(cfg), Error);
  cfg = small_config();
  cfg.min_pages_per_source = 0;
  EXPECT_THROW(generate_web_corpus(cfg), Error);
}

TEST(ScaledDatasets, SizesPreservePaperOrdering) {
  const auto uk = scaled_dataset_config(ScaledDataset::kUK2002S);
  const auto it = scaled_dataset_config(ScaledDataset::kIT2004S);
  const auto wb = scaled_dataset_config(ScaledDataset::kWB2001S);
  EXPECT_LT(uk.num_sources, it.num_sources);
  EXPECT_LT(it.num_sources, wb.num_sources);
  EXPECT_EQ(dataset_name(ScaledDataset::kUK2002S), "UK2002S");
  EXPECT_EQ(dataset_name(ScaledDataset::kIT2004S), "IT2004S");
  EXPECT_EQ(dataset_name(ScaledDataset::kWB2001S), "WB2001S");
}

TEST(ScaledDatasets, SpamFractionIsTwoPercent) {
  for (const auto which :
       {ScaledDataset::kUK2002S, ScaledDataset::kIT2004S,
        ScaledDataset::kWB2001S}) {
    const auto cfg = scaled_dataset_config(which);
    EXPECT_EQ(cfg.num_spam_sources, cfg.num_sources / 50);
  }
}

}  // namespace
}  // namespace srsr::graph
