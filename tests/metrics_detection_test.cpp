// Tests for spam-detection quality metrics (metrics/detection.hpp).
#include "metrics/detection.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace srsr::metrics {
namespace {

TEST(PrecisionRecallCounts, ConfusionMatrixBasics) {
  const std::vector<u8> flagged{1, 1, 0, 0, 1};
  const std::vector<u8> labels{1, 0, 1, 0, 1};
  const auto pr = precision_recall(flagged, labels);
  EXPECT_EQ(pr.true_positives, 2u);
  EXPECT_EQ(pr.false_positives, 1u);
  EXPECT_EQ(pr.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(pr.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pr.recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pr.f1, 2.0 / 3.0);
}

TEST(PrecisionRecallCounts, NothingFlagged) {
  const std::vector<u8> flagged{0, 0};
  const std::vector<u8> labels{1, 0};
  const auto pr = precision_recall(flagged, labels);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.f1, 0.0);
}

TEST(PrecisionRecallCounts, PerfectDetector) {
  const std::vector<u8> flagged{1, 0, 1};
  const std::vector<u8> labels{1, 0, 1};
  const auto pr = precision_recall(flagged, labels);
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.f1, 1.0);
}

TEST(PrecisionRecallCounts, SizeMismatchThrows) {
  const std::vector<u8> a{1};
  const std::vector<u8> b{1, 0};
  EXPECT_THROW(precision_recall(a, b), Error);
}

TEST(PrecisionAtK, TopKFlaggedByScore) {
  const std::vector<f64> scores{0.9, 0.1, 0.8, 0.2};
  const std::vector<u8> labels{1, 1, 0, 0};
  // top-2 = {0, 2}: one true positive of two flagged; one missed.
  const auto pr = precision_recall_at_k(scores, labels, 2);
  EXPECT_DOUBLE_EQ(pr.precision, 0.5);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
}

TEST(PrecisionAtK, KZeroAndKFull) {
  const std::vector<f64> scores{0.9, 0.1};
  const std::vector<u8> labels{1, 0};
  EXPECT_DOUBLE_EQ(precision_recall_at_k(scores, labels, 0).recall, 0.0);
  const auto full = precision_recall_at_k(scores, labels, 2);
  EXPECT_DOUBLE_EQ(full.recall, 1.0);
  EXPECT_DOUBLE_EQ(full.precision, 0.5);
  EXPECT_THROW(precision_recall_at_k(scores, labels, 3), Error);
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  const std::vector<f64> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<u8> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(average_precision(scores, labels), 1.0);
}

TEST(AveragePrecision, WorstRankingKnownValue) {
  // Positives at ranks 3 and 4 of 4: AP = (1/3 + 2/4) / 2.
  const std::vector<f64> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<u8> labels{0, 0, 1, 1};
  EXPECT_NEAR(average_precision(scores, labels), (1.0 / 3.0 + 0.5) / 2.0,
              1e-12);
}

TEST(AveragePrecision, NoPositivesThrows) {
  const std::vector<f64> scores{0.5};
  const std::vector<u8> labels{0};
  EXPECT_THROW(average_precision(scores, labels), Error);
}

TEST(RocAuc, PerfectAndReversed) {
  const std::vector<f64> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<u8> perfect{1, 1, 0, 0};
  const std::vector<u8> reversed{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, perfect), 1.0);
  EXPECT_DOUBLE_EQ(roc_auc(scores, reversed), 0.0);
}

TEST(RocAuc, RandomScoresGiveHalf) {
  // All scores tied: AUC must be exactly 0.5 via midranks.
  const std::vector<f64> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<u8> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(RocAuc, KnownMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6),(0.8>0.2),(0.4<0.6),(0.4>0.2) -> 3/4.
  const std::vector<f64> scores{0.8, 0.6, 0.4, 0.2};
  const std::vector<u8> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.75);
}

TEST(RocAuc, NeedsBothClasses) {
  const std::vector<f64> scores{0.5, 0.6};
  const std::vector<u8> all_pos{1, 1};
  EXPECT_THROW(roc_auc(scores, all_pos), Error);
}

}  // namespace
}  // namespace srsr::metrics
