// Tests for the influence-throttling transform T' -> T'' (Sec. 3.3).
#include "core/throttle.hpp"

#include <gtest/gtest.h>

#include "core/source_graph.hpp"
#include "core/source_map.hpp"
#include "graph/webgen.hpp"
#include "util/rng.hpp"

namespace srsr::core {
namespace {

using rank::StochasticMatrix;
using K = std::vector<f64>;

// Row 0: self 0.2, -> 1: 0.5, -> 2: 0.3. Rows 1, 2: pure self-loops.
StochasticMatrix sample_matrix() {
  return StochasticMatrix({0, 3, 4, 5}, {0, 1, 2, 1, 2},
                          {0.2, 0.5, 0.3, 1.0, 1.0});
}

TEST(Throttle, KappaZeroIsIdentity) {
  const auto t = sample_matrix();
  const auto t2 = apply_throttle(t, std::vector<f64>(3, 0.0));
  for (NodeId r = 0; r < 3; ++r) {
    for (NodeId c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(t2.weight(r, c), t.weight(r, c));
  }
}

TEST(Throttle, RaisesSelfWeightToKappa) {
  const auto t2 = apply_throttle(sample_matrix(), K{0.6, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(t2.weight(0, 0), 0.6);
  // Off-diagonals rescaled proportionally to sum 0.4: 0.5/0.8*0.4 and
  // 0.3/0.8*0.4.
  EXPECT_DOUBLE_EQ(t2.weight(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(t2.weight(0, 2), 0.15);
}

TEST(Throttle, RowAlreadyMeetingFloorIsUntouched) {
  // kappa below the existing self weight: no change at all.
  const auto t2 = apply_throttle(sample_matrix(), K{0.1, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(t2.weight(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(t2.weight(0, 1), 0.5);
}

TEST(Throttle, FullThrottleKillsOutflow) {
  const auto t2 = apply_throttle(sample_matrix(), K{1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(t2.weight(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t2.weight(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(t2.weight(0, 2), 0.0);
  EXPECT_NEAR(t2.row_sum(0), 1.0, 1e-12);
}

TEST(Throttle, OffDiagonalProportionsPreserved) {
  const auto t2 = apply_throttle(sample_matrix(), K{0.9, 0.0, 0.0});
  // 0.5 : 0.3 ratio must survive the rescale.
  EXPECT_NEAR(t2.weight(0, 1) / t2.weight(0, 2), 0.5 / 0.3, 1e-12);
}

TEST(Throttle, PureSelfLoopUnchangedByAnyKappa) {
  for (const f64 k : {0.0, 0.3, 0.9, 1.0}) {
    const auto t2 = apply_throttle(sample_matrix(), K{0.0, k, 0.0});
    EXPECT_DOUBLE_EQ(t2.weight(1, 1), 1.0);
  }
}

TEST(Throttle, MissingSelfEntryIsSplicedIn) {
  // Row without an explicit self entry: 0 -> 1 only.
  const StochasticMatrix t({0, 1, 2}, {1, 1}, {1.0, 1.0});
  const auto t2 = apply_throttle(t, K{0.4, 0.0});
  EXPECT_DOUBLE_EQ(t2.weight(0, 0), 0.4);
  EXPECT_DOUBLE_EQ(t2.weight(0, 1), 0.6);
  EXPECT_NEAR(t2.row_sum(0), 1.0, 1e-12);
}

TEST(Throttle, DanglingRowBehaviour) {
  const StochasticMatrix t({0, 0, 1}, {1}, {1.0});
  // kappa = 0: stays dangling.
  EXPECT_TRUE(apply_throttle(t, K{0.0, 0.0}).is_dangling_row(0));
  // kappa > 0: becomes a pure self-loop.
  const auto t2 = apply_throttle(t, K{0.5, 0.0});
  EXPECT_DOUBLE_EQ(t2.weight(0, 0), 1.0);
}

TEST(Throttle, RejectsBadKappa) {
  const auto t = sample_matrix();
  EXPECT_THROW(apply_throttle(t, K{0.5, 0.5}), Error);  // size mismatch
  EXPECT_THROW(apply_throttle(t, K{-0.1, 0.0, 0.0}), Error);
  EXPECT_THROW(apply_throttle(t, K{1.1, 0.0, 0.0}), Error);
}

TEST(Throttle, SelfWeightsHelper) {
  const auto sw = self_weights(sample_matrix());
  ASSERT_EQ(sw.size(), 3u);
  EXPECT_DOUBLE_EQ(sw[0], 0.2);
  EXPECT_DOUBLE_EQ(sw[1], 1.0);
  EXPECT_DOUBLE_EQ(sw[2], 1.0);
}

TEST(Throttle, IdempotentUnderSameKappa) {
  const std::vector<f64> kappa{0.7, 0.2, 0.0};
  const auto once = apply_throttle(sample_matrix(), kappa);
  const auto twice = apply_throttle(once, kappa);
  for (NodeId r = 0; r < 3; ++r)
    for (NodeId c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(twice.weight(r, c), once.weight(r, c));
}

TEST(ThrottleDiscard, MandatedMassBecomesDeficit) {
  const auto t2 = apply_throttle(sample_matrix(), K{0.6, 0.0, 0.0},
                                 ThrottleMode::kTeleportDiscard);
  // No self entry; off-diagonals rescaled to 1 - kappa; row deficit 0.6.
  EXPECT_DOUBLE_EQ(t2.weight(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t2.weight(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(t2.weight(0, 2), 0.15);
  EXPECT_NEAR(t2.row_deficits()[0], 0.6, 1e-12);
}

TEST(ThrottleDiscard, FullThrottleEmptiesRow) {
  const auto t2 = apply_throttle(sample_matrix(), K{1.0, 0.0, 0.0},
                                 ThrottleMode::kTeleportDiscard);
  EXPECT_TRUE(t2.is_dangling_row(0));
}

TEST(ThrottleDiscard, SurrendersFromSelfEdgeFirst) {
  // self = 0.2 >= kappa = 0.1: the surrendered 0.1 comes entirely out
  // of the self-edge; out-edges are untouched.
  const auto t2 = apply_throttle(sample_matrix(), K{0.1, 0.0, 0.0},
                                 ThrottleMode::kTeleportDiscard);
  EXPECT_NEAR(t2.weight(0, 0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(t2.weight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(t2.weight(0, 2), 0.3);
  EXPECT_NEAR(t2.row_deficits()[0], 0.1, 1e-12);
}

TEST(ThrottleDiscard, ExactlyKappaIsSurrendered) {
  for (const f64 k : {0.0, 0.3, 0.7, 1.0}) {
    const auto t2 = apply_throttle(sample_matrix(), K{k, 0.0, 0.0},
                                   ThrottleMode::kTeleportDiscard);
    EXPECT_NEAR(t2.row_sum(0), 1.0 - k, 1e-12) << "kappa=" << k;
  }
}

TEST(ThrottleDiscard, PureSelfLoopLosesKappaMass) {
  // Unlike absorb mode, discard denies a pure self-loop (e.g. a link
  // farm that cut all out-edges) its self-retention: kappa = 1 empties
  // the row entirely.
  const auto t2 = apply_throttle(sample_matrix(), K{0.0, 1.0, 0.0},
                                 ThrottleMode::kTeleportDiscard);
  EXPECT_TRUE(t2.is_dangling_row(1));
  const auto half = apply_throttle(sample_matrix(), K{0.0, 0.4, 0.0},
                                   ThrottleMode::kTeleportDiscard);
  EXPECT_NEAR(half.weight(1, 1), 0.6, 1e-12);
}

TEST(ThrottleDiscard, DanglingRowStaysDangling) {
  const rank::StochasticMatrix t({0, 0, 1}, {1}, {1.0});
  const auto t2 =
      apply_throttle(t, K{0.5, 0.0}, ThrottleMode::kTeleportDiscard);
  EXPECT_TRUE(t2.is_dangling_row(0));
}

// Property sweep over kappa values on a real consensus matrix.
class ThrottleProperty : public ::testing::TestWithParam<f64> {};

TEST_P(ThrottleProperty, RowsStochasticAndFloorMet) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 150;
  cfg.num_spam_sources = 8;
  cfg.seed = 314;
  const auto corpus = graph::generate_web_corpus(cfg);
  const SourceMap map = SourceMap::from_corpus(corpus);
  const SourceGraph sg(corpus.pages, map);
  const auto tprime = sg.consensus_matrix(true);

  const f64 k = GetParam();
  // Mixed kappa: alternate between 0 and the sweep value.
  std::vector<f64> kappa(sg.num_sources(), 0.0);
  for (u32 s = 0; s < sg.num_sources(); s += 2) kappa[s] = k;
  const auto t2 = apply_throttle(tprime, kappa);
  const auto sw = self_weights(t2);
  for (NodeId r = 0; r < t2.num_rows(); ++r) {
    EXPECT_NEAR(t2.row_sum(r), 1.0, 1e-9) << "row " << r;
    EXPECT_GE(sw[r], kappa[r] - 1e-12) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Kappas, ThrottleProperty,
                         ::testing::Values(0.1, 0.5, 0.8, 0.9, 0.99, 1.0));

}  // namespace
}  // namespace srsr::core
