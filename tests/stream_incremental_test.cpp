// Tests for IncrementalRanker (stream/incremental.hpp). The core
// property: after ANY sequence of edge batches and kappa swaps, the
// warm incrementally-maintained sigma matches a cold full solve of the
// same system to 1e-10 in Linf — the invariant-carried (p, r) state
// never drifts, across batches, sign-flipping residuals, rows whose
// out-degree collapses to zero, source growth, and both throttle
// modes. At eps = 1e-13 on ~60 rows each solve's truncation is below
// n*eps/(1-alpha) ~ 4e-11, so the 1e-10 gate has no slack for real
// drift. Runs under the tsan + sanitize ctest labels.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/throttle.hpp"
#include "graph/webgen.hpp"
#include "rank/push.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/edge_stream.hpp"
#include "stream/incremental.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace srsr::stream {
namespace {

constexpr f64 kEpsilon = 1e-13;
constexpr f64 kParity = 1e-10;

graph::WebCorpus small_corpus(u32 sources = 60, u64 seed = 17) {
  graph::WebGenConfig cfg;
  cfg.num_sources = sources;
  cfg.num_spam_sources = 3;
  cfg.seed = seed;
  return graph::generate_web_corpus(cfg);
}

IncrementalConfig tight_config(
    core::ThrottleMode mode = core::ThrottleMode::kTeleportDiscard) {
  IncrementalConfig cfg;
  cfg.epsilon = kEpsilon;
  cfg.mode = mode;
  return cfg;
}

/// Cold reference: full pipeline on the ranker's CURRENT graph state —
/// materialize, throttle, push from scratch at the same epsilon.
std::vector<f64> cold_sigma(const IncrementalRanker& ranker) {
  const auto throttled = core::apply_throttle(
      ranker.graph().materialize(), ranker.kappa(), ranker.config().mode);
  rank::PushConfig cfg;
  cfg.alpha = ranker.config().alpha;
  cfg.epsilon = kEpsilon;
  const auto result = rank::push_solve(throttled, cfg);
  EXPECT_TRUE(result.converged);
  return result.scores;
}

f64 linf(std::span<const f64> a, std::span<const f64> b) {
  EXPECT_EQ(a.size(), b.size());
  f64 worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

void expect_parity(const IncrementalRanker& ranker, const std::string& where) {
  const f64 diff = linf(ranker.sigma(), cold_sigma(ranker));
  EXPECT_LE(diff, kParity) << where;
}

/// Bundle: corpus + dynamic graph + ranker + stream.
struct Fixture {
  explicit Fixture(IncrementalConfig cfg = tight_config(), u32 sources = 60,
                   u64 seed = 17)
      : corpus(small_corpus(sources, seed)),
        map(corpus.page_source),
        graph(corpus.pages, map, corpus.source_hosts),
        ranker(graph, cfg),
        stream(graph.num_pages()) {}

  graph::WebCorpus corpus;
  core::SourceMap map;
  DynamicSourceGraph graph;
  IncrementalRanker ranker;
  EdgeStream stream;
};

TEST(IncrementalRanker, InitialSolveMatchesColdPipeline) {
  Fixture fx;
  EXPECT_EQ(fx.ranker.last_outcome().path, UpdatePath::kFull);
  EXPECT_TRUE(fx.ranker.last_outcome().converged);
  expect_parity(fx.ranker, "initial");
  // sigma is a probability vector.
  f64 sum = 0.0;
  for (const f64 v : fx.ranker.sigma()) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(IncrementalRanker, RandomizedBatchesStayOnParity) {
  for (const auto mode : {core::ThrottleMode::kTeleportDiscard,
                          core::ThrottleMode::kSelfAbsorb}) {
    Fixture fx(tight_config(mode));
    // A standing policy so throttling is actually exercised.
    std::vector<f64> kappa(fx.ranker.num_sources(), 0.0);
    for (const NodeId s : fx.corpus.spam_sources()) kappa[s] = 0.9;
    fx.ranker.set_kappa(kappa);
    expect_parity(fx.ranker, "policy installed");

    Pcg32 rng(5);
    for (u32 round = 0; round < 15; ++round) {
      const u32 ops = 1 + rng.next_below(10);
      for (u32 i = 0; i < ops; ++i) {
        const NodeId u = rng.next_below(fx.stream.num_pages());
        const NodeId v = rng.next_below(fx.stream.num_pages());
        if (rng.next_below(3) == 0)
          fx.stream.erase_link(u, v);
        else
          fx.stream.insert_link(u, v);
      }
      const auto outcome = fx.ranker.apply(fx.stream.commit());
      EXPECT_TRUE(outcome.converged);
      expect_parity(fx.ranker, "mode " + std::to_string(static_cast<int>(mode)) +
                                   " round " + std::to_string(round));
    }
  }
}

TEST(IncrementalRanker, SignFlippingEditsCancelCleanly) {
  // Insert a cross-host link, then remove it again in the next batch:
  // the second injection is the exact sign-flip of the first, and the
  // state must land back on the original fixed point.
  Fixture fx;
  const std::vector<f64> before = fx.ranker.sigma();
  const NodeId u = fx.corpus.source_first_page[2];
  const NodeId v = fx.corpus.source_first_page[40];

  fx.stream.insert_link(u, v);
  const auto ins = fx.ranker.apply(fx.stream.commit());
  EXPECT_EQ(ins.path, UpdatePath::kDelta);
  expect_parity(fx.ranker, "inserted");

  fx.stream.erase_link(u, v);
  const auto del = fx.ranker.apply(fx.stream.commit());
  EXPECT_EQ(del.path, UpdatePath::kDelta);
  expect_parity(fx.ranker, "erased");
  EXPECT_LE(linf(fx.ranker.sigma(), before), kParity);
}

TEST(IncrementalRanker, OutDegreeCollapseToZeroStaysOnParity) {
  Fixture fx;
  for (NodeId p = 0; p < fx.corpus.num_pages(); ++p) {
    if (fx.corpus.page_source[p] != 7) continue;
    for (const NodeId q : fx.corpus.pages.out_neighbors(p))
      fx.stream.erase_link(p, q);
  }
  const auto outcome = fx.ranker.apply(fx.stream.commit());
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.dirty_rows, 1u);
  expect_parity(fx.ranker, "collapsed row");
}

TEST(IncrementalRanker, SourceGrowthStaysOnParity) {
  Fixture fx;
  // New host with pages linking into and out of the existing graph;
  // in-links into the new source come from existing (dirty) rows.
  const NodeId p1 = fx.stream.add_page("new-a.example");
  const NodeId p2 = fx.stream.add_page("new-b.example");
  fx.stream.insert_link(p1, fx.corpus.source_first_page[0]);
  fx.stream.insert_link(p1, p2);
  fx.stream.insert_link(fx.corpus.source_first_page[3], p1);
  const auto outcome = fx.ranker.apply(fx.stream.commit());
  EXPECT_EQ(outcome.new_sources, 2u);
  EXPECT_EQ(fx.ranker.num_sources(), fx.corpus.num_sources() + 2);
  EXPECT_TRUE(outcome.converged);
  expect_parity(fx.ranker, "grown");

  // Another batch on the grown graph keeps the invariant.
  fx.stream.insert_link(p2, fx.corpus.source_first_page[5]);
  fx.ranker.apply(fx.stream.commit());
  expect_parity(fx.ranker, "post-growth edit");
}

TEST(IncrementalRanker, LargeBatchTakesTheFullPath) {
  // A batch dirtying most rows injects more residual mass than the
  // full_mass_threshold — the ranker must choose the cold solve.
  Fixture fx;
  Pcg32 rng(23);
  for (NodeId p = 0; p < fx.corpus.num_pages(); p += 2)
    fx.stream.insert_link(p, rng.next_below(fx.corpus.num_pages()));
  const auto outcome = fx.ranker.apply(fx.stream.commit());
  EXPECT_EQ(outcome.path, UpdatePath::kFull);
  EXPECT_TRUE(outcome.converged);
  expect_parity(fx.ranker, "full path");
}

TEST(IncrementalRanker, PushCapTriggersColdFallback) {
  IncrementalConfig cfg = tight_config();
  cfg.max_delta_pushes = 1;  // guaranteed stall on any real delta
  Fixture fx(cfg);
  fx.stream.insert_link(fx.corpus.source_first_page[1],
                        fx.corpus.source_first_page[30]);
  const auto outcome = fx.ranker.apply(fx.stream.commit());
  EXPECT_EQ(outcome.path, UpdatePath::kFallback);
  EXPECT_TRUE(outcome.converged);
  expect_parity(fx.ranker, "fallback");

  // The fallback re-seeded clean state: further warm batches work.
  fx.stream.erase_link(fx.corpus.source_first_page[1],
                       fx.corpus.source_first_page[30]);
  EXPECT_TRUE(fx.ranker.apply(fx.stream.commit()).converged);
  expect_parity(fx.ranker, "post-fallback");
}

TEST(IncrementalRanker, KappaSwapsRideTheWarmPath) {
  Fixture fx;
  std::vector<f64> kappa(fx.ranker.num_sources(), 0.0);
  for (const NodeId s : fx.corpus.spam_sources()) kappa[s] = 1.0;
  const auto up = fx.ranker.set_kappa(kappa);
  EXPECT_EQ(up.path, UpdatePath::kDelta);
  EXPECT_TRUE(up.converged);
  expect_parity(fx.ranker, "kappa on");

  // Unchanged kappa injects nothing: no pushes, and the seed is just
  // the standing sub-epsilon residual carried between solves.
  const auto same = fx.ranker.set_kappa(kappa);
  EXPECT_EQ(same.pushes, 0u);
  EXPECT_LT(same.seed_mass,
            static_cast<f64>(fx.ranker.num_sources()) * kEpsilon);

  // Back to zero: sign-flipped plan delta.
  std::vector<f64> off(fx.ranker.num_sources(), 0.0);
  EXPECT_TRUE(fx.ranker.set_kappa(off).converged);
  expect_parity(fx.ranker, "kappa off");
}

TEST(IncrementalRanker, InterleavedEditsAndPolicySwapsStayOnParity) {
  Fixture fx;
  Pcg32 rng(77);
  for (u32 round = 0; round < 8; ++round) {
    for (u32 i = 0; i < 4; ++i)
      fx.stream.insert_link(rng.next_below(fx.stream.num_pages()),
                            rng.next_below(fx.stream.num_pages()));
    fx.ranker.apply(fx.stream.commit());
    std::vector<f64> kappa(fx.ranker.num_sources(), 0.0);
    for (u32 i = 0; i < 5; ++i)
      kappa[rng.next_below(fx.ranker.num_sources())] =
          0.1 * static_cast<f64>(1 + rng.next_below(10));
    fx.ranker.set_kappa(kappa);
    expect_parity(fx.ranker, "interleaved round " + std::to_string(round));
  }
}

TEST(IncrementalRanker, MalformedBatchPoisonsThenSelfResyncs) {
  Fixture fx;
  UpdateBatch bad;
  bad.mutations.push_back({MutationKind::kInsertLink, 0, 1, ""});
  bad.mutations.push_back(
      {MutationKind::kInsertLink, fx.graph.num_pages() + 9, 0, ""});
  EXPECT_THROW(fx.ranker.apply(bad), Error);
  // The ranker re-solved cold against the partially-mutated graph:
  // (graph, sigma) are consistent and further batches work.
  expect_parity(fx.ranker, "after poison");
  fx.stream.insert_link(fx.corpus.source_first_page[2],
                        fx.corpus.source_first_page[8]);
  EXPECT_TRUE(fx.ranker.apply(fx.stream.commit()).converged);
  expect_parity(fx.ranker, "recovered");
}

TEST(IncrementalRanker, RejectsOutOfOrderSequences) {
  Fixture fx;
  UpdateBatch b1;
  b1.sequence = 5;
  fx.ranker.apply(b1);
  UpdateBatch b2;
  b2.sequence = 5;  // not strictly increasing
  EXPECT_THROW(fx.ranker.apply(b2), Error);
}

TEST(IncrementalRanker, OutcomeAccountingIsCoherent) {
  Fixture fx;
  fx.stream.insert_link(fx.corpus.source_first_page[4],
                        fx.corpus.source_first_page[9]);
  fx.stream.insert_link(fx.corpus.source_first_page[4],
                        fx.corpus.source_first_page[9]);  // coalesces away
  fx.stream.erase_link(fx.corpus.source_first_page[6], 0);  // likely absent
  const auto outcome = fx.ranker.apply(fx.stream.commit());
  EXPECT_EQ(outcome.mutations + outcome.noops, 2u);
  EXPECT_GE(outcome.dirty_rows, 1u);
  EXPECT_GT(outcome.seed_mass, 0.0);
  EXPECT_GT(outcome.pushes, 0u);
  EXPECT_GT(outcome.touched, 0u);
  EXPECT_LT(outcome.max_residual, kEpsilon);
  EXPECT_GE(outcome.seconds, 0.0);
}

}  // namespace
}  // namespace srsr::stream
