// Tests for the spam-proximity walk (core/spam_proximity.hpp, Sec. 5).
#include "core/spam_proximity.hpp"

#include <gtest/gtest.h>

#include "core/source_graph.hpp"
#include "core/source_map.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/webgen.hpp"

namespace srsr::core {
namespace {

TEST(SpamProximity, SeedHasHighestScore) {
  // Chain of citations INTO spam: b -> a -> s (s is spam).
  graph::GraphBuilder b(4);
  b.add_edge(1, 0);  // a -> s
  b.add_edge(2, 1);  // b -> a
  // Node 3 is unrelated.
  const auto r = spam_proximity(b.build(), {0});
  EXPECT_GT(r.scores[0], r.scores[1]);
  EXPECT_GT(r.scores[1], r.scores[2]);
  EXPECT_GT(r.scores[2], r.scores[3]);
}

TEST(SpamProximity, LinkingToSpamRaisesProximity) {
  // Two identical bystanders; one of them links to spam.
  graph::GraphBuilder b(3);
  b.add_edge(1, 0);  // node 1 endorses spam node 0
  const auto r = spam_proximity(b.build(), {0});
  EXPECT_GT(r.scores[1], r.scores[2]);
}

TEST(SpamProximity, BeingLinkedFromSpamDoesNotRaiseProximity) {
  // Spam pointing AT you is not your fault: the walk runs on the
  // inverted graph, so spam out-links do not taint their targets.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);  // spam 0 -> victim 1
  const auto r = spam_proximity(b.build(), {0});
  EXPECT_NEAR(r.scores[1], r.scores[2], 1e-9);
}

TEST(SpamProximity, ScoresFormDistribution) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 100;
  cfg.num_spam_sources = 5;
  cfg.seed = 11;
  const auto corpus = graph::generate_web_corpus(cfg);
  const SourceMap map = SourceMap::from_corpus(corpus);
  const SourceGraph sg(corpus.pages, map);
  const auto r = spam_proximity(sg.topology(), corpus.spam_sources());
  f64 sum = 0.0;
  for (const f64 v : r.scores) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SpamProximity, SeedSubsetStillRanksSpamHigh) {
  // The paper's regime: seed < 10% of true spam; the full spam cluster
  // should still score above the median because spam interlinks.
  graph::WebGenConfig cfg;
  cfg.num_sources = 400;
  cfg.num_spam_sources = 40;
  cfg.spam_exchange_degree = 6;
  cfg.seed = 12;
  const auto corpus = graph::generate_web_corpus(cfg);
  const SourceMap map = SourceMap::from_corpus(corpus);
  const SourceGraph sg(corpus.pages, map);
  const auto spam = corpus.spam_sources();
  // Seed: first 4 spam sources only (10%).
  const std::vector<NodeId> seeds(spam.begin(), spam.begin() + 4);
  const auto r = spam_proximity(sg.topology(), seeds);
  // Average proximity of unseeded spam must exceed that of legit.
  f64 spam_total = 0.0, legit_total = 0.0;
  u32 spam_n = 0, legit_n = 0;
  std::vector<bool> seeded(corpus.num_sources(), false);
  for (const NodeId s : seeds) seeded[s] = true;
  for (u32 s = 0; s < corpus.num_sources(); ++s) {
    if (seeded[s]) continue;
    if (corpus.source_is_spam[s]) {
      spam_total += r.scores[s];
      ++spam_n;
    } else {
      legit_total += r.scores[s];
      ++legit_n;
    }
  }
  EXPECT_GT(spam_total / spam_n, 3.0 * (legit_total / legit_n));
}

TEST(SpamProximity, RejectsBadSeeds) {
  const auto g = graph::cycle(3);
  EXPECT_THROW(spam_proximity(g, {}), Error);
  EXPECT_THROW(spam_proximity(g, {5}), Error);
}

TEST(SpamProximity, BetaControlsDecay) {
  // Higher beta spreads proximity further from the seed.
  graph::GraphBuilder b(3);
  b.add_edge(1, 0);
  b.add_edge(2, 1);
  SpamProximityConfig low, high;
  low.beta = 0.5;
  high.beta = 0.95;
  const auto g = b.build();
  const auto rl = spam_proximity(g, {0}, low);
  const auto rh = spam_proximity(g, {0}, high);
  // Relative mass on the 2-hop endorser grows with beta.
  EXPECT_GT(rh.scores[2] / rh.scores[0], rl.scores[2] / rl.scores[0]);
}

}  // namespace
}  // namespace srsr::core
