# End-to-end smoke test of the srsr_cli tool: generate -> rank -> audit
# -> attack -> sweep over a temp crawl directory. Any non-zero exit or
# missing output fails the test.
if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path-to-srsr_cli>")
endif()

set(DIR "${CMAKE_CURRENT_BINARY_DIR}/cli_test_crawl")
file(REMOVE_RECURSE "${DIR}")

function(run_cli)
  execute_process(COMMAND "${CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "srsr_cli ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  set(CLI_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

run_cli(generate --out "${DIR}" --sources 150 --spam 8 --seed 3 --terms)
foreach(f pages.txt edges.txt labels.txt terms.txt)
  if(NOT EXISTS "${DIR}/${f}")
    message(FATAL_ERROR "generate did not write ${f}")
  endif()
endforeach()

run_cli(rank --in "${DIR}" --algo srsr --top 3)
if(NOT CLI_OUTPUT MATCHES "Top 3 by srsr")
  message(FATAL_ERROR "rank output malformed:\n${CLI_OUTPUT}")
endif()

run_cli(rank --in "${DIR}" --algo pagerank --top 3)
run_cli(rank --in "${DIR}" --algo sourcerank --top 3)

# --trace must emit a structured JSON run report.
set(TRACE "${DIR}/trace.json")
run_cli(rank --in "${DIR}" --algo srsr --top 3 --trace "${TRACE}")
if(NOT EXISTS "${TRACE}")
  message(FATAL_ERROR "rank --trace did not write ${TRACE}")
endif()
file(READ "${TRACE}" trace_json)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON schema GET "${trace_json}" schema_version)
  if(NOT schema EQUAL 1)
    message(FATAL_ERROR "unexpected schema_version '${schema}' in ${TRACE}")
  endif()
  string(JSON n_trace LENGTH "${trace_json}" trace)
  if(n_trace LESS 1)
    message(FATAL_ERROR "run report has no iteration records:\n${trace_json}")
  endif()
  string(JSON first_iter GET "${trace_json}" trace 0 iteration)
  if(NOT first_iter EQUAL 1)
    message(FATAL_ERROR "first trace record should be iteration 1, got '${first_iter}'")
  endif()
  string(JSON n_stages LENGTH "${trace_json}" stages)
  if(n_stages LESS 1)
    message(FATAL_ERROR "run report has no stage timings:\n${trace_json}")
  endif()
  string(JSON solver_name GET "${trace_json}" solver name)
  if(NOT solver_name STREQUAL "srsr")
    message(FATAL_ERROR "unexpected solver name '${solver_name}' in ${TRACE}")
  endif()
else()
  # Pre-3.19 CMake: settle for structural regexes.
  if(NOT trace_json MATCHES "\"schema_version\":1")
    message(FATAL_ERROR "run report missing schema_version:\n${trace_json}")
  endif()
  if(NOT trace_json MATCHES "\"trace\":\\[\\{\"iteration\":1,")
    message(FATAL_ERROR "run report missing iteration records:\n${trace_json}")
  endif()
endif()

# --trace-out must emit a Perfetto/Chrome trace with the documented span
# tree: the cli.rank root enclosing the core solve and solver stages.
set(SPANS "${DIR}/rank_spans.json")
run_cli(rank --in "${DIR}" --algo srsr --top 3 --trace-out "${SPANS}")
if(NOT CLI_OUTPUT MATCHES "wrote [0-9]+ spans to")
  message(FATAL_ERROR "rank --trace-out did not report spans:\n${CLI_OUTPUT}")
endif()
if(NOT EXISTS "${SPANS}")
  message(FATAL_ERROR "rank --trace-out did not write ${SPANS}")
endif()
file(READ "${SPANS}" spans_json)
if(NOT spans_json MATCHES "\"traceEvents\":\\[")
  message(FATAL_ERROR "span trace is not Perfetto JSON:\n${spans_json}")
endif()
foreach(span cli.rank core.throttle_plan core.solve rank.power.solve)
  if(NOT spans_json MATCHES "\"name\":\"${span}\"")
    message(FATAL_ERROR "span trace is missing '${span}':\n${spans_json}")
  endif()
endforeach()

run_cli(stats --in "${DIR}")
if(NOT CLI_OUTPUT MATCHES "iterations")
  message(FATAL_ERROR "stats output malformed:\n${CLI_OUTPUT}")
endif()

# --prometheus: text exposition format 0.0.4. Counters carry the _total
# suffix and histograms must end their cumulative buckets at +Inf.
run_cli(stats --in "${DIR}" --prometheus)
if(NOT CLI_OUTPUT MATCHES "# TYPE srsr_")
  message(FATAL_ERROR "stats --prometheus has no TYPE lines:\n${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "_total [0-9]")
  message(FATAL_ERROR "stats --prometheus has no counters:\n${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "_bucket{le=\"\\+Inf\"}")
  message(FATAL_ERROR "stats --prometheus histograms lack +Inf:\n${CLI_OUTPUT}")
endif()

run_cli(audit --in "${DIR}" --topk 5)
if(NOT CLI_OUTPUT MATCHES "Spam-proximity audit")
  message(FATAL_ERROR "audit output malformed:\n${CLI_OUTPUT}")
endif()

run_cli(attack --in "${DIR}" --target-source 42 --pages 50)
if(NOT CLI_OUTPUT MATCHES "PageRank percentile")
  message(FATAL_ERROR "attack output malformed:\n${CLI_OUTPUT}")
endif()

# sweep: one model, several kappa configurations through the lazy view.
run_cli(sweep --in "${DIR}" --configs 4 --mode discard)
if(NOT CLI_OUTPUT MATCHES "Kappa sweep \\(4 configs")
  message(FATAL_ERROR "sweep output malformed:\n${CLI_OUTPUT}")
endif()
if(NOT CLI_OUTPUT MATCHES "1\\.00")
  message(FATAL_ERROR "sweep should reach full throttle strength:\n${CLI_OUTPUT}")
endif()
run_cli(sweep --in "${DIR}" --configs 2 --mode absorb)
execute_process(COMMAND "${CLI}" sweep --in "${DIR}" --mode bogus
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "sweep with an unknown --mode should fail")
endif()

# serve: a scripted line-oriented query session against the crawl.
# Covers the full request surface (top/score/rank/compare/info/stats/
# metrics/tracefile), a mid-session recompute (epoch 2 publishes while
# the session runs), and clean shutdown via `quit`.
set(SESSION "${DIR}/serve_session.txt")
set(SERVE_TRACE "${DIR}/serve_spans.json")
file(WRITE "${SESSION}" "top 3
score www.host0000042.example
rank www.host0000042.example
compare www.host0000042.example
recompute 0.5
info
stats
metrics
tracefile ${SERVE_TRACE}
quit
")
execute_process(COMMAND "${CLI}" serve --in "${DIR}" --metrics
                INPUT_FILE "${SESSION}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "srsr_cli serve session failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "serve ready: 150 sources, epoch 1")
  message(FATAL_ERROR "serve did not come up:\n${out}")
endif()
if(NOT out MATCHES "\n1 [^\n]*\n2 [^\n]*\n3 ")
  message(FATAL_ERROR "serve top 3 should list ranks 1..3:\n${out}")
endif()
if(NOT out MATCHES "www\\.host0000042\\.example rank [0-9]+ of 150")
  message(FATAL_ERROR "serve rank output malformed:\n${out}")
endif()
if(NOT out MATCHES "rank_change")
  message(FATAL_ERROR "serve compare output malformed:\n${out}")
endif()
if(NOT out MATCHES "published epoch 2 \\([0-9]+ iterations, converged")
  message(FATAL_ERROR "serve recompute did not publish epoch 2:\n${out}")
endif()
if(NOT out MATCHES "checksum_ok yes")
  message(FATAL_ERROR "serve info should verify the live checksum:\n${out}")
endif()
if(NOT out MATCHES "slo p50 [^\n]* queries [0-9]+, breaches [0-9]+, healthy")
  message(FATAL_ERROR "serve info is missing the SLO line:\n${out}")
endif()
if(NOT out MATCHES "drift epochs [0-9]+->[0-9]+, l1 [^\n]*anomalous")
  message(FATAL_ERROR "serve info is missing the drift line:\n${out}")
endif()
if(NOT out MATCHES "published 2, failed 0")
  message(FATAL_ERROR "serve stats malformed:\n${out}")
endif()
# `metrics` inlines the Prometheus exposition into the session.
if(NOT out MATCHES "# TYPE srsr_serve_")
  message(FATAL_ERROR "serve metrics exposition missing:\n${out}")
endif()
if(NOT out MATCHES "bye\n$")
  message(FATAL_ERROR "serve did not shut down cleanly:\n${out}")
endif()

# `tracefile` dumped the session's spans: query roots plus the traced
# recompute with its solver-stage children, Perfetto-loadable.
if(NOT EXISTS "${SERVE_TRACE}")
  message(FATAL_ERROR "serve tracefile did not write ${SERVE_TRACE}")
endif()
file(READ "${SERVE_TRACE}" serve_spans)
if(NOT serve_spans MATCHES "\"traceEvents\":\\[")
  message(FATAL_ERROR "serve trace is not Perfetto JSON:\n${serve_spans}")
endif()
foreach(span serve.query.top_k serve.query.score serve.recompute
        serve.snapshot_build core.solve rank.power.solve)
  if(NOT serve_spans MATCHES "\"name\":\"${span}\"")
    message(FATAL_ERROR "serve trace is missing '${span}':\n${serve_spans}")
  endif()
endforeach()

# An unknown host must produce an err line, not kill the session; EOF
# without `quit` must still shut down cleanly.
file(WRITE "${SESSION}" "score no.such.host
")
execute_process(COMMAND "${CLI}" serve --in "${DIR}"
                INPUT_FILE "${SESSION}"
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve EOF shutdown failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "err unknown host 'no.such.host'")
  message(FATAL_ERROR "serve should report unknown hosts:\n${out}")
endif()
if(NOT out MATCHES "bye\n$")
  message(FATAL_ERROR "serve should say bye on EOF:\n${out}")
endif()

# Error paths must exit non-zero, not crash.
execute_process(COMMAND "${CLI}" rank --in "${DIR}/nonexistent"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "rank on a missing directory should fail")
endif()
execute_process(COMMAND "${CLI}" bogus-command
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()

file(REMOVE_RECURSE "${DIR}")
message(STATUS "cli_test OK")
