// Tests for SCC decomposition and bow-tie analysis (graph/scc.hpp).
#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace srsr::graph {
namespace {

TEST(Scc, EmptyGraph) {
  const auto scc = strongly_connected_components(Graph());
  EXPECT_EQ(scc.num_components, 0u);
}

TEST(Scc, CycleIsOneComponent) {
  const auto scc = strongly_connected_components(cycle(6));
  EXPECT_EQ(scc.num_components, 1u);
  for (const NodeId c : scc.component) EXPECT_EQ(c, scc.component[0]);
}

TEST(Scc, PathIsAllSingletons) {
  const auto scc = strongly_connected_components(path(5));
  EXPECT_EQ(scc.num_components, 5u);
  std::set<NodeId> distinct(scc.component.begin(), scc.component.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Scc, TwoCyclesWithBridge) {
  // cycle {0,1,2} -> bridge -> cycle {3,4}
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 3);
  const auto scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[0], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);
}

TEST(Scc, ComponentNumberingIsReverseTopological) {
  // Edge u->v across components implies component[u] >= component[v]
  // (Tarjan emits sink components first).
  Pcg32 rng(81);
  const Graph g = erdos_renyi(60, 0.05, rng);
  const auto scc = strongly_connected_components(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const NodeId v : g.out_neighbors(u))
      EXPECT_GE(scc.component[u], scc.component[v]);
}

TEST(Scc, ComponentSizesSumToNodeCount) {
  Pcg32 rng(82);
  const Graph g = erdos_renyi(100, 0.03, rng);
  const auto scc = strongly_connected_components(g);
  const auto sizes = scc.component_size();
  u64 total = 0;
  for (const u32 s : sizes) {
    EXPECT_GT(s, 0u);
    total += s;
  }
  EXPECT_EQ(total, 100u);
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  const auto scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.num_components, 2u);
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  // 200k-node path: the recursive Tarjan would blow the stack here.
  const NodeId n = 200000;
  const auto scc = strongly_connected_components(path(n));
  EXPECT_EQ(scc.num_components, n);
}

TEST(Condensation, IsAcyclicAndCollapsed) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // SCC {0,1}
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 2);  // SCC {2,3}
  b.add_edge(3, 4);  // singleton {4}
  const Graph g = b.build();
  const auto scc = strongly_connected_components(g);
  const Graph dag = condensation(g, scc);
  EXPECT_EQ(dag.num_nodes(), 3u);
  EXPECT_EQ(dag.num_edges(), 2u);
  // A DAG's SCCs are all singletons.
  const auto dag_scc = strongly_connected_components(dag);
  EXPECT_EQ(dag_scc.num_components, dag.num_nodes());
}

TEST(BowTie, HandCraftedDecomposition) {
  // in(0) -> core{1,2} -> out(3); 4 disconnected.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 1);
  b.add_edge(2, 3);
  const auto bt = bow_tie(b.build());
  EXPECT_EQ(bt.core, 2u);
  EXPECT_EQ(bt.in, 1u);
  EXPECT_EQ(bt.out, 1u);
  EXPECT_EQ(bt.other, 1u);
}

TEST(BowTie, PartitionCoversAllNodes) {
  Pcg32 rng(83);
  const Graph g = erdos_renyi(150, 0.02, rng);
  const auto bt = bow_tie(g);
  EXPECT_EQ(bt.core + bt.in + bt.out + bt.other, 150u);
  EXPECT_GT(bt.core, 0u);
}

TEST(BowTie, StronglyConnectedGraphIsAllCore) {
  const auto bt = bow_tie(cycle(10));
  EXPECT_EQ(bt.core, 10u);
  EXPECT_EQ(bt.in + bt.out + bt.other, 0u);
}

}  // namespace
}  // namespace srsr::graph
