// Tests for the TransitionOperator layer (rank/operator.hpp):
// MatrixOperator must reproduce the matrix it wraps, ThrottledView must
// reproduce the per-row affine reweighting it encodes, and concurrent
// reads of a shared view must be race-free (this suite runs under the
// tsan preset).
#include "rank/operator.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rank/gauss_seidel.hpp"
#include "rank/push.hpp"
#include "rank/solvers.hpp"

namespace srsr::rank {
namespace {

// Row 0: self 0.2 + out-edges; rows 1-2: pure self-loops.
StochasticMatrix sample() {
  return StochasticMatrix({0, 3, 4, 5}, {0, 1, 2, 1, 2},
                          {0.2, 0.5, 0.3, 1.0, 1.0});
}

// A_rc = off_scale[r]*B_rc (c != r), A_rr = diagonal[r]; dense
// reference evaluation for small matrices.
f64 plan_entry(const StochasticMatrix& base, const RowAffinePlan& plan,
               NodeId r, NodeId c) {
  if (r == c) return plan.diagonal[r];
  return plan.off_scale[r] * base.weight(r, c);
}

TEST(MatrixOperator, PullMatchesLeftMultiply) {
  const auto m = sample();
  const MatrixOperator op(m);
  EXPECT_EQ(op.num_rows(), m.num_rows());
  EXPECT_EQ(op.num_entries(), m.num_entries());
  const std::vector<f64> x{0.5, 0.3, 0.2};
  std::vector<f64> want(3, 0.0);
  m.left_multiply(x, want);
  std::vector<f64> got(3, 0.0);
  op.pull(x, got);
  for (NodeId v = 0; v < 3; ++v) EXPECT_NEAR(got[v], want[v], 1e-15);
}

TEST(MatrixOperator, DiagonalAndOffDiagonalSplitThePull) {
  const auto m = sample();
  const MatrixOperator op(m);
  const std::vector<f64> x{0.5, 0.3, 0.2};
  std::vector<f64> full(3, 0.0);
  op.pull(x, full);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_NEAR(op.pull_off_diagonal(v, x) + x[v] * op.diagonal(v), full[v],
                1e-15);
    EXPECT_DOUBLE_EQ(op.diagonal(v), m.weight(v, v));
  }
}

TEST(MatrixOperator, RowReturnsDirectSpans) {
  const auto m = sample();
  const MatrixOperator op(m);
  std::vector<NodeId> cols_scratch;
  std::vector<f64> weights_scratch;
  const OperatorRow row = op.row(0, cols_scratch, weights_scratch);
  ASSERT_EQ(row.cols.size(), 3u);
  EXPECT_EQ(row.cols.data(), m.row_cols(0).data());  // no copy
  EXPECT_TRUE(cols_scratch.empty());
}

TEST(MatrixOperator, DeficitsMatchMatrix) {
  const StochasticMatrix m({0, 1, 1}, {1}, {0.4});
  const MatrixOperator op(m);
  EXPECT_NEAR(op.deficits()[0], 0.6, 1e-15);
  EXPECT_NEAR(op.deficits()[1], 1.0, 1e-15);
}

RowAffinePlan half_plan() {
  // Row 0 throttled to diag 0.5 with off-edges rescaled by 0.625
  // (= (1-0.5)/0.8); rows 1-2 untouched pure self-loops.
  RowAffinePlan plan;
  plan.off_scale = {0.625, 1.0, 1.0};
  plan.diagonal = {0.5, 1.0, 1.0};
  plan.deficit = {0.0, 0.0, 0.0};
  return plan;
}

TEST(ThrottledView, PullMatchesDenseReference) {
  const auto base = sample();
  const auto t = base.transpose();
  const ThrottledView view(base, t, half_plan());
  const std::vector<f64> x{0.5, 0.3, 0.2};
  std::vector<f64> got(3, 0.0);
  view.pull(x, got);
  for (NodeId v = 0; v < 3; ++v) {
    f64 want = 0.0;
    for (NodeId u = 0; u < 3; ++u)
      want += x[u] * plan_entry(base, view.plan(), u, v);
    EXPECT_NEAR(got[v], want, 1e-15);
    EXPECT_NEAR(view.pull_off_diagonal(v, x) + x[v] * view.diagonal(v),
                got[v], 1e-15);
  }
}

TEST(ThrottledView, RowOverridesDiagonalInPlace) {
  const auto base = sample();
  const auto t = base.transpose();
  const ThrottledView view(base, t, half_plan());
  std::vector<NodeId> cols_scratch;
  std::vector<f64> weights_scratch;
  const OperatorRow row = view.row(0, cols_scratch, weights_scratch);
  ASSERT_EQ(row.cols.size(), 3u);
  EXPECT_EQ(row.cols[0], 0u);
  EXPECT_DOUBLE_EQ(row.weights[0], 0.5);           // overridden diagonal
  EXPECT_DOUBLE_EQ(row.weights[1], 0.5 * 0.625);   // rescaled
  EXPECT_DOUBLE_EQ(row.weights[2], 0.3 * 0.625);
}

TEST(ThrottledView, RowSplicesMissingDiagonalKeepingColumnsSorted) {
  // Row 0 has no self entry; a nonzero diagonal must be spliced first.
  const StochasticMatrix base({0, 1, 3}, {1, 0, 1}, {1.0, 0.5, 0.5});
  const auto t = base.transpose();
  RowAffinePlan plan;
  plan.off_scale = {0.5, 1.0};
  plan.diagonal = {0.5, 0.0};
  plan.deficit = {0.0, 0.0};
  const ThrottledView view(base, t, std::move(plan));
  std::vector<NodeId> cols_scratch;
  std::vector<f64> weights_scratch;
  const OperatorRow row = view.row(0, cols_scratch, weights_scratch);
  ASSERT_EQ(row.cols.size(), 2u);
  EXPECT_EQ(row.cols[0], 0u);
  EXPECT_EQ(row.cols[1], 1u);
  EXPECT_DOUBLE_EQ(row.weights[0], 0.5);
  EXPECT_DOUBLE_EQ(row.weights[1], 0.5);
}

TEST(ThrottledView, ResetPlanSwapsConfigurations) {
  const auto base = sample();
  const auto t = base.transpose();
  ThrottledView view(base, t, half_plan());
  EXPECT_DOUBLE_EQ(view.diagonal(0), 0.5);
  RowAffinePlan identity;
  identity.off_scale = {1.0, 1.0, 1.0};
  identity.diagonal = {0.2, 1.0, 1.0};
  identity.deficit = {0.0, 0.0, 0.0};
  view.reset_plan(std::move(identity));
  EXPECT_DOUBLE_EQ(view.diagonal(0), 0.2);
  const std::vector<f64> x{0.5, 0.3, 0.2};
  std::vector<f64> via_view(3, 0.0);
  view.pull(x, via_view);
  std::vector<f64> via_base(3, 0.0);
  base.left_multiply(x, via_base);
  for (NodeId v = 0; v < 3; ++v)
    EXPECT_NEAR(via_view[v], via_base[v], 1e-15);
}

TEST(ThrottledView, SolversAcceptTheOperatorForm) {
  const auto base = sample();
  const auto t = base.transpose();
  const ThrottledView view(base, t, half_plan());
  SolverConfig sc;
  sc.convergence.tolerance = 1e-13;
  const RankResult power = power_solve(view, sc);
  EXPECT_TRUE(power.converged);
  const RankResult gs = gauss_seidel_solve(view, sc);
  EXPECT_TRUE(gs.converged);
  PushConfig pc;
  pc.epsilon = 1e-14;
  const PushResult push = push_solve(view, pc);
  EXPECT_TRUE(push.converged);
  // All three solve the same system up to deficit handling; this plan
  // has none, so the vectors agree.
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_NEAR(power.scores[v], gs.scores[v], 1e-8);
    EXPECT_NEAR(power.scores[v], push.scores[v], 1e-8);
  }
}

// tsan target: a shared view must serve concurrent pulls without
// synchronization (all state is const after construction). std::thread
// rather than OpenMP so the race checker instruments the threads.
TEST(ThrottledView, ConcurrentPullsAreRaceFree) {
  const auto base = sample();
  const auto t = base.transpose();
  const ThrottledView view(base, t, half_plan());
  const std::vector<f64> x{0.5, 0.3, 0.2};
  std::vector<f64> first(3, 0.0);
  view.pull(x, first);

  std::vector<std::vector<f64>> outs(4, std::vector<f64>(3, 0.0));
  std::vector<std::thread> workers;
  workers.reserve(outs.size());
  for (auto& out : outs)
    workers.emplace_back([&view, &x, &out] {
      for (int rep = 0; rep < 100; ++rep) view.pull(x, out);
    });
  for (auto& w : workers) w.join();
  for (const auto& out : outs)
    for (NodeId v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(out[v], first[v]);
}

}  // namespace
}  // namespace srsr::rank
