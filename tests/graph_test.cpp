// Tests for the immutable CSR Graph (graph/graph.hpp).
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace srsr::graph {
namespace {

Graph triangle() {
  // 0 -> 1, 1 -> 2, 2 -> 0
  return Graph({0, 1, 2, 3}, {1, 2, 0});
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, BasicAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 1u);
  ASSERT_EQ(g.out_neighbors(1).size(), 1u);
  EXPECT_EQ(g.out_neighbors(1)[0], 2u);
}

TEST(Graph, HasEdge) {
  const Graph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, HasEdgeOutOfRangeThrows) {
  const Graph g = triangle();
  EXPECT_THROW(g.has_edge(3, 0), Error);
  EXPECT_THROW(g.has_edge(0, 3), Error);
}

TEST(Graph, DanglingNodes) {
  // 0 -> 1, 2 has no out-edges.
  const Graph g({0, 1, 1, 1}, {1});
  const auto dangling = g.dangling_nodes();
  ASSERT_EQ(dangling.size(), 2u);
  EXPECT_EQ(dangling[0], 1u);
  EXPECT_EQ(dangling[1], 2u);
  EXPECT_EQ(g.num_dangling(), 2u);
}

TEST(Graph, InDegrees) {
  const Graph g({0, 2, 3, 3}, {1, 2, 2});  // 0->1, 0->2, 1->2
  const auto in = g.in_degrees();
  EXPECT_EQ(in[0], 0u);
  EXPECT_EQ(in[1], 1u);
  EXPECT_EQ(in[2], 2u);
}

TEST(Graph, SelfLoopAllowed) {
  const Graph g({0, 1}, {0});
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(Graph, ValidationRejectsUnsortedNeighbors) {
  EXPECT_THROW(Graph({0, 2}, {1, 0}), Error);
}

TEST(Graph, ValidationRejectsDuplicateNeighbors) {
  EXPECT_THROW(Graph({0, 2, 2}, {1, 1}), Error);
}

TEST(Graph, ValidationRejectsOutOfRangeTarget) {
  EXPECT_THROW(Graph({0, 1}, {5}), Error);
}

TEST(Graph, ValidationRejectsBadOffsets) {
  EXPECT_THROW(Graph({1, 2}, {0}), Error);          // doesn't start at 0
  EXPECT_THROW(Graph({0, 2}, {0}), Error);          // end != targets size
  EXPECT_THROW(Graph({}, {}), Error);               // empty offsets
}

TEST(Graph, EqualityIsStructural) {
  EXPECT_EQ(triangle(), triangle());
  const Graph other({0, 1, 2, 3}, {2, 0, 1});  // reversed triangle
  EXPECT_NE(triangle(), other);
}

TEST(Graph, MemoryBytesAccounting) {
  const Graph g = triangle();
  EXPECT_EQ(g.memory_bytes(), 4 * sizeof(u64) + 3 * sizeof(NodeId));
}

}  // namespace
}  // namespace srsr::graph
