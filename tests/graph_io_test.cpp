// Tests for graph/corpus (de)serialization (graph/io.hpp).
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>
#include <filesystem>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace srsr::graph {
namespace {

/// RAII temp file path (removed on destruction).
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("srsr_test_" + name + "_" + std::to_string(::getpid())))
                  .string()) {}
  ~TempPath() { std::filesystem::remove(path_); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

TEST(EdgeListIo, RoundTripsThroughStream) {
  Pcg32 rng(21);
  const Graph g = erdos_renyi(50, 0.1, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  EXPECT_EQ(read_edge_list(ss, g.num_nodes()), g);
}

TEST(EdgeListIo, InfersNodeCountFromMaxId) {
  std::stringstream ss("0 3\n2 1\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(EdgeListIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n0 1\n   \n# more\n1 0\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListIo, RejectsMalformedLines) {
  std::stringstream one_token("0\n");
  EXPECT_THROW(read_edge_list(one_token), Error);
  std::stringstream three_tokens("0 1 2\n");
  EXPECT_THROW(read_edge_list(three_tokens), Error);
  std::stringstream garbage("a b\n");
  EXPECT_THROW(read_edge_list(garbage), Error);
}

TEST(EdgeListIo, EmptyInputIsEmptyGraph) {
  std::stringstream ss("# nothing\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 0u);
}

TEST(EdgeListIo, ExplicitNodeCountAddsIsolatedNodes) {
  std::stringstream ss("0 1\n");
  const Graph g = read_edge_list(ss, 10);
  EXPECT_EQ(g.num_nodes(), 10u);
}

TEST(EdgeListIo, FileRoundTrip) {
  Pcg32 rng(22);
  const Graph g = erdos_renyi(40, 0.1, rng);
  TempPath tmp("edges");
  write_edge_list_file(tmp.str(), g);
  EXPECT_EQ(read_edge_list_file(tmp.str(), g.num_nodes()), g);
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/nowhere.txt"), Error);
}

TEST(BinaryIo, RoundTripsExactly) {
  Pcg32 rng(23);
  const Graph g = erdos_renyi(100, 0.05, rng);
  TempPath tmp("bin");
  write_binary(tmp.str(), g);
  EXPECT_EQ(read_binary(tmp.str()), g);
}

TEST(BinaryIo, RoundTripsEmptyGraph) {
  TempPath tmp("binempty");
  write_binary(tmp.str(), Graph());
  EXPECT_EQ(read_binary(tmp.str()), Graph());
}

TEST(BinaryIo, RejectsBadMagic) {
  TempPath tmp("badmagic");
  {
    std::ofstream out(tmp.str(), std::ios::binary);
    out << "NOTAGRAPH-FILE";
  }
  EXPECT_THROW(read_binary(tmp.str()), Error);
}

TEST(BinaryIo, RejectsTruncatedFile) {
  Pcg32 rng(24);
  const Graph g = erdos_renyi(50, 0.1, rng);
  TempPath tmp("trunc");
  write_binary(tmp.str(), g);
  const auto size = std::filesystem::file_size(tmp.str());
  std::filesystem::resize_file(tmp.str(), size / 2);
  EXPECT_THROW(read_binary(tmp.str()), Error);
}

TEST(UrlCorpus, GroupsPagesByHost) {
  std::stringstream pages(
      "0 http://a.example/home\n"
      "1 http://a.example/about\n"
      "2 http://b.example/\n"
      "3 https://A.EXAMPLE/other\n");
  std::stringstream edges("0 2\n1 0\n3 2\n");
  const WebCorpus c = read_url_corpus(pages, edges);
  EXPECT_EQ(c.num_sources(), 2u);
  EXPECT_EQ(c.page_source[0], c.page_source[1]);
  EXPECT_EQ(c.page_source[0], c.page_source[3]);  // case-insensitive host
  EXPECT_NE(c.page_source[0], c.page_source[2]);
  EXPECT_EQ(c.source_page_count[c.page_source[0]], 3u);
  EXPECT_EQ(c.pages.num_edges(), 3u);
}

TEST(UrlCorpus, SourceIdsInFirstAppearanceOrder) {
  std::stringstream pages(
      "0 http://z.example/\n"
      "1 http://a.example/\n");
  std::stringstream edges("");
  const WebCorpus c = read_url_corpus(pages, edges);
  EXPECT_EQ(c.source_hosts[0], "z.example");
  EXPECT_EQ(c.source_hosts[1], "a.example");
}

TEST(UrlCorpus, RejectsSparseOrDuplicateIds) {
  {
    std::stringstream pages("0 http://a.example/\n5 http://b.example/\n");
    std::stringstream edges("");
    EXPECT_THROW(read_url_corpus(pages, edges), Error);
  }
  {
    std::stringstream pages("0 http://a.example/\n0 http://b.example/\n");
    std::stringstream edges("");
    EXPECT_THROW(read_url_corpus(pages, edges), Error);
  }
}

TEST(UrlCorpus, NoLabelsAssigned) {
  std::stringstream pages("0 http://a.example/\n");
  std::stringstream edges("");
  const WebCorpus c = read_url_corpus(pages, edges);
  for (const u8 flag : c.source_is_spam) EXPECT_EQ(flag, 0);
}

TEST(MatchHosts, FindsKnownHostsIgnoresUnknown) {
  std::stringstream pages(
      "0 http://a.example/\n"
      "1 http://b.example/\n");
  std::stringstream edges("");
  const WebCorpus c = read_url_corpus(pages, edges);
  std::stringstream hosts("B.EXAMPLE\nnot-in-corpus.example\n# comment\n");
  const auto ids = match_hosts(c, hosts);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(c.source_hosts[ids[0]], "b.example");
}

}  // namespace
}  // namespace srsr::graph
