// Tests for GraphBuilder (graph/builder.hpp): dedup, sorting, growth.
#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace srsr::graph {
namespace {

TEST(GraphBuilder, EmptyBuild) {
  GraphBuilder b(5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, SortsNeighbors) {
  GraphBuilder b(4);
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  const auto nbrs = g.out_neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(GraphBuilder, KeepsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(1, 1);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_edge(1, 1));
}

TEST(GraphBuilder, RejectsOutOfRangeIds) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), Error);
  EXPECT_THROW(b.add_edge(2, 0), Error);
}

TEST(GraphBuilder, GrowExtendsIdSpace) {
  GraphBuilder b(2);
  b.grow(5);
  b.add_edge(4, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_TRUE(g.has_edge(4, 0));
}

TEST(GraphBuilder, GrowNeverShrinks) {
  GraphBuilder b(5);
  b.grow(2);
  EXPECT_EQ(b.num_nodes(), 5u);
}

TEST(GraphBuilder, AddNodeReturnsFreshIds) {
  GraphBuilder b(1);
  EXPECT_EQ(b.add_node(), 1u);
  EXPECT_EQ(b.add_node(), 2u);
  b.add_edge(2, 0);
  EXPECT_EQ(b.build().num_nodes(), 3u);
}

TEST(GraphBuilder, FromExistingGraphRoundTrips) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  const Graph g = b.build();
  GraphBuilder b2(g);
  EXPECT_EQ(b2.build(), g);
}

TEST(GraphBuilder, IncrementalEditPreservesOriginalEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  GraphBuilder b2(g);
  b2.add_edge(1, 2);
  const Graph g2 = b2.build();
  EXPECT_TRUE(g2.has_edge(0, 1));
  EXPECT_TRUE(g2.has_edge(1, 2));
  EXPECT_EQ(g2.num_edges(), 2u);
}

// Property: building from a random multiset of edges yields exactly the
// distinct-edge set, sorted.
class BuilderRandomized : public ::testing::TestWithParam<u64> {};

TEST_P(BuilderRandomized, MatchesReferenceSet) {
  Pcg32 rng(GetParam());
  const NodeId n = 50;
  GraphBuilder b(n);
  std::vector<std::pair<NodeId, NodeId>> reference;
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = rng.next_below(n);
    const NodeId v = rng.next_below(n);
    b.add_edge(u, v);
    reference.emplace_back(u, v);
  }
  std::sort(reference.begin(), reference.end());
  reference.erase(std::unique(reference.begin(), reference.end()),
                  reference.end());
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), reference.size());
  for (const auto& [u, v] : reference) EXPECT_TRUE(g.has_edge(u, v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderRandomized,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace srsr::graph
