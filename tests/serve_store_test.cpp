// Concurrency tests for the serve layer's SnapshotStore: N reader
// threads hammering current() while one writer publishes — the
// RCU-style contract (wait-free-ish readers, atomic swap, refcount
// reclamation, checksum-proven torn-read freedom). Runs under the
// "tsan" ctest label so ThreadSanitizer instruments every interleaving.
#include "serve/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/snapshot.hpp"

namespace srsr::serve {
namespace {

/// A tiny snapshot whose every score encodes `tag`, so readers can
/// prove all values they see belong to one publish.
RankSnapshot tagged_snapshot(u32 n, f64 tag) {
  std::vector<f64> scores(n, tag);
  SnapshotMeta meta;
  meta.kappa_policy = "test";
  meta.solver = "none";
  return RankSnapshot(std::move(scores), {}, std::move(meta));
}

TEST(SnapshotStore, EmptyStoreServesNull) {
  SnapshotStore store;
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.epoch(), 0u);
}

TEST(SnapshotStore, PublishStampsIncreasingEpochs) {
  SnapshotStore store;
  EXPECT_EQ(store.publish(tagged_snapshot(8, 0.125)), 1u);
  const SnapshotPtr first = store.current();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->meta().epoch, 1u);
  EXPECT_TRUE(first->verify_checksum());

  EXPECT_EQ(store.publish(tagged_snapshot(8, 0.125)), 2u);
  const SnapshotPtr second = store.current();
  EXPECT_EQ(second->meta().epoch, 2u);
  EXPECT_TRUE(second->verify_checksum());
  // Identical payloads, different epochs: the checksum folds the epoch
  // in, so the two snapshots are still distinguishable end to end.
  EXPECT_NE(first->checksum(), second->checksum());
  EXPECT_EQ(store.epoch(), 2u);
}

TEST(SnapshotStore, HeldSnapshotOutlivesLaterPublishes) {
  SnapshotStore store;
  store.publish(tagged_snapshot(16, 0.0625));
  const SnapshotPtr held = store.current();
  for (int i = 0; i < 10; ++i) store.publish(tagged_snapshot(16, 0.0625));
  // The old epoch is reclaimed only when the last holder lets go; the
  // data is still intact and verifiable.
  EXPECT_EQ(held->meta().epoch, 1u);
  EXPECT_TRUE(held->verify_checksum());
  for (const f64 v : held->scores()) EXPECT_EQ(v, 0.0625);
}

TEST(SnapshotStore, ConcurrentReadersNeverSeeTornSnapshots) {
  constexpr u32 kSources = 64;
  constexpr u32 kReaders = 4;
  constexpr u32 kPublishes = 400;

  SnapshotStore store;
  store.publish(tagged_snapshot(kSources, 1.0 / kSources));
  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0};
  std::atomic<u64> epoch_regressions{0};
  std::atomic<u64> reads{0};

  std::vector<std::thread> readers;
  for (u32 t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      u64 last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotPtr snap = store.current();
        if (!snap->verify_checksum()) torn.fetch_add(1);
        const u64 epoch = snap->meta().epoch;
        if (epoch < last_epoch) epoch_regressions.fetch_add(1);
        last_epoch = epoch;
        // All scores must come from one publish: the tag is uniform.
        const f64 tag = snap->score(0);
        for (const f64 v : snap->scores())
          if (v != tag) torn.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }

  // Writer: a fresh snapshot per publish, tag varying with the epoch.
  // The yield interleaves writer and readers even on a single core.
  for (u32 i = 1; i <= kPublishes; ++i) {
    const f64 tag = static_cast<f64>(i) / kPublishes;
    store.publish(tagged_snapshot(kSources, tag));
    std::this_thread::yield();
  }
  // Don't stop before every reader had a chance to run: on a loaded
  // single-core box the reader threads may not have been scheduled at
  // all while the writer published.
  while (reads.load() < kReaders) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.epoch(), kPublishes + 1u);
  EXPECT_EQ(store.current()->meta().epoch, kPublishes + 1u);
}

}  // namespace
}  // namespace srsr::serve
