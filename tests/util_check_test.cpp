// Tests for the contract layer (util/check.hpp): macro semantics,
// release-mode SRSR_DCHECK elision, the domain validators, and the
// negative paths where core/rank entry points must reject bad inputs.
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/kappa.hpp"
#include "core/throttle.hpp"
#include "rank/operator.hpp"
#include "rank/stochastic.hpp"

namespace srsr {
namespace {

constexpr f64 kNaN = std::numeric_limits<f64>::quiet_NaN();
constexpr f64 kInf = std::numeric_limits<f64>::infinity();

// ---------------------------------------------------------------- macros

TEST(SrsrCheck, PassingConditionIsQuiet) {
  EXPECT_NO_THROW(SRSR_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SRSR_CHECK(true, "never formatted"));
}

TEST(SrsrCheck, FailureThrowsContractViolation) {
  EXPECT_THROW(SRSR_CHECK(false), ContractViolation);
  // ...which derives from srsr::Error, so existing catch sites hold.
  EXPECT_THROW(SRSR_CHECK(false), Error);
}

TEST(SrsrCheck, MessageCarriesExpressionFileLineAndStreamedArgs) {
  try {
    SRSR_CHECK(2 < 1, "lhs = ", 2, ", rhs = ", 1);
    FAIL() << "SRSR_CHECK did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("util_check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("lhs = 2, rhs = 1"), std::string::npos) << what;
    EXPECT_NE(std::string(e.file()).find("util_check_test.cpp"),
              std::string::npos);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(SrsrCheck, ZeroArgumentMessageForm) {
  try {
    SRSR_CHECK(false);
    FAIL() << "SRSR_CHECK did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(SrsrCheck, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  SRSR_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

TEST(SrsrCheck, MessageArgsNotEvaluatedOnSuccess) {
  int formatted = 0;
  const auto count = [&] {
    ++formatted;
    return 0;
  };
  SRSR_CHECK(true, "value ", count());
  EXPECT_EQ(formatted, 0);
  EXPECT_THROW(SRSR_CHECK(false, "value ", count()), ContractViolation);
  EXPECT_EQ(formatted, 1);
}

TEST(SrsrDcheck, ElidedInReleaseLiveInDebug) {
  // In DCHECK builds the condition runs and a failure throws; in release
  // builds the expression is an unevaluated operand — still
  // type-checked, but the side effect below must NOT happen. This is
  // the release-elision contract from the header.
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return true;
  };
  SRSR_DCHECK(touch());
  EXPECT_EQ(evaluations, dchecks_enabled() ? 1 : 0);

  if (dchecks_enabled()) {
    EXPECT_THROW(SRSR_DCHECK(false), ContractViolation);
  } else {
    EXPECT_NO_THROW(SRSR_DCHECK(false));
  }
}

TEST(SrsrDebugValidate, RunsOnlyInDcheckBuilds) {
  int runs = 0;
  SRSR_DEBUG_VALIDATE([&] { ++runs; }());
  EXPECT_EQ(runs, dchecks_enabled() ? 1 : 0);
}

// ------------------------------------------------------------ validators

TEST(ValidateKappa, AcceptsUnitIntervalRejectsOutside) {
  const std::vector<f64> ok{0.0, 0.5, 1.0};
  EXPECT_NO_THROW(validate_kappa(ok));
  EXPECT_NO_THROW(validate_kappa(std::vector<f64>{}));  // empty is legal

  EXPECT_THROW(validate_kappa(std::vector<f64>{-0.001}), ContractViolation);
  EXPECT_THROW(validate_kappa(std::vector<f64>{1.001}), ContractViolation);
  EXPECT_THROW(validate_kappa(std::vector<f64>{0.5, kNaN}),
               ContractViolation);
  EXPECT_THROW(validate_kappa(std::vector<f64>{kInf}), ContractViolation);
}

TEST(ValidateProbabilityVector, ToleranceOnTheTotal) {
  const std::vector<f64> uniform(4, 0.25);
  EXPECT_NO_THROW(validate_probability_vector(uniform));
  EXPECT_NO_THROW(validate_probability_vector(std::vector<f64>{}));

  // Off by more than tol: rejected. Within a loose tol: accepted.
  const std::vector<f64> short_mass{0.5, 0.4};
  EXPECT_THROW(validate_probability_vector(short_mass, 1e-6),
               ContractViolation);
  EXPECT_NO_THROW(validate_probability_vector(short_mass, 0.2));

  EXPECT_THROW(validate_probability_vector(std::vector<f64>{1.5, -0.5}),
               ContractViolation);
  EXPECT_THROW(validate_probability_vector(std::vector<f64>{kNaN, 1.0}),
               ContractViolation);
}

TEST(ValidateInRange, BoundsInclusiveNonFiniteRejected) {
  EXPECT_NO_THROW(validate_in_range(0.85, 0.0, 1.0, "alpha"));
  EXPECT_NO_THROW(validate_in_range(0.0, 0.0, 1.0, "alpha"));
  EXPECT_NO_THROW(validate_in_range(1.0, 0.0, 1.0, "alpha"));
  EXPECT_THROW(validate_in_range(1.0001, 0.0, 1.0, "alpha"),
               ContractViolation);
  EXPECT_THROW(validate_in_range(kNaN, 0.0, 1.0, "alpha"),
               ContractViolation);
}

// Duck-typed stand-in: lets the template validator see rows that the
// StochasticMatrix constructor would already have rejected.
struct FakeMatrix {
  std::vector<std::vector<f64>> rows;
  NodeId num_rows() const { return static_cast<NodeId>(rows.size()); }
  std::span<const f64> row_weights(NodeId r) const { return rows[r]; }
};

TEST(ValidateRowStochastic, AcceptsDeficitRowsRejectsExcessMass) {
  EXPECT_NO_THROW(validate_row_stochastic(
      FakeMatrix{{{0.3, 0.7}, {0.4}, {}}}));  // full, deficit, dangling
  EXPECT_THROW(validate_row_stochastic(FakeMatrix{{{0.9, 0.2}}}),
               ContractViolation);
  EXPECT_THROW(validate_row_stochastic(FakeMatrix{{{-0.1, 0.5}}}),
               ContractViolation);
  EXPECT_THROW(validate_row_stochastic(FakeMatrix{{{kNaN}}}),
               ContractViolation);
}

TEST(ValidatePlan, ShapeAndRangeChecks) {
  rank::RowAffinePlan plan;
  plan.off_scale = {1.0, 0.5};
  plan.diagonal = {0.0, 0.5};
  plan.deficit = {0.0, 0.0};
  EXPECT_NO_THROW(validate_plan(plan, 2));
  EXPECT_THROW(validate_plan(plan, 3), ContractViolation);  // size mismatch

  auto bad = plan;
  bad.off_scale[0] = -1.0;
  EXPECT_THROW(validate_plan(bad, 2), ContractViolation);
  bad = plan;
  bad.diagonal[1] = 1.5;
  EXPECT_THROW(validate_plan(bad, 2), ContractViolation);
  bad = plan;
  bad.deficit[0] = kNaN;
  EXPECT_THROW(validate_plan(bad, 2), ContractViolation);
}

// ----------------------------------------- contracts at core/rank edges

TEST(RankContracts, MatrixConstructorRejectsNonStochasticRow) {
  // Row sums to 1.8 — the Eq. 2 row-stochastic precondition must fire.
  EXPECT_THROW(rank::StochasticMatrix({0, 2}, {0, 1}, {0.9, 0.9}),
               ContractViolation);
  EXPECT_THROW(rank::StochasticMatrix({0, 1}, {0}, {kNaN}),
               ContractViolation);
}

TEST(RankContracts, WeightRejectsOutOfRangeIndices) {
  const rank::StochasticMatrix m({0, 1, 3}, {1, 0, 1}, {1.0, 0.3, 0.7});
  EXPECT_THROW(m.weight(2, 0), ContractViolation);  // row out of range
  EXPECT_THROW(m.weight(0, 2), ContractViolation);  // col out of range
  EXPECT_NO_THROW(m.weight(1, 1));
}

TEST(RankContracts, ResetPlanValidatesEagerly) {
  const rank::StochasticMatrix base({0, 1, 3}, {1, 0, 1}, {1.0, 0.3, 0.7});
  const rank::StochasticMatrix transpose = base.transpose();
  rank::RowAffinePlan identity;
  identity.off_scale = {1.0, 1.0};
  identity.diagonal = {0.0, 0.7};
  identity.deficit = {0.0, 0.0};
  rank::ThrottledView view(base, transpose, identity);

  rank::RowAffinePlan wrong_size = identity;
  wrong_size.off_scale.pop_back();
  EXPECT_THROW(view.reset_plan(wrong_size), ContractViolation);

  rank::RowAffinePlan nan_plan = identity;
  nan_plan.diagonal[0] = kNaN;
  EXPECT_THROW(view.reset_plan(nan_plan), ContractViolation);

  EXPECT_NO_THROW(view.reset_plan(identity));
}

TEST(CoreContracts, KappaPoliciesRejectNaNInputs) {
  EXPECT_THROW(core::kappa_uniform(3, kNaN), ContractViolation);
  EXPECT_THROW(core::kappa_uniform(3, 1.5), ContractViolation);

  const std::vector<f64> prox{0.3, kNaN, 0.1};
  EXPECT_THROW(core::kappa_top_k(prox, 1), ContractViolation);
  EXPECT_THROW(core::kappa_top_k(std::vector<f64>{0.1}, 2),
               ContractViolation);  // k > n
  EXPECT_THROW(core::kappa_threshold(prox, kNaN), ContractViolation);
  EXPECT_THROW(core::kappa_proportional(std::vector<f64>{0.1}, 0.0),
               ContractViolation);
}

TEST(CoreContracts, ThrottlePlanRejectsBadKappa) {
  const rank::StochasticMatrix base({0, 1, 3}, {1, 0, 1}, {1.0, 0.3, 0.7});
  const auto stats = core::ThrottleRowStats::of(base);

  const std::vector<f64> nan_kappa{0.5, kNaN};
  EXPECT_THROW(core::make_throttle_plan(stats, nan_kappa,
                                        core::ThrottleMode::kSelfAbsorb),
               ContractViolation);
  const std::vector<f64> short_kappa{0.5};
  EXPECT_THROW(core::make_throttle_plan(stats, short_kappa,
                                        core::ThrottleMode::kSelfAbsorb),
               ContractViolation);

  const std::vector<f64> ok{0.5, 0.25};
  EXPECT_NO_THROW(core::make_throttle_plan(
      stats, ok, core::ThrottleMode::kTeleportDiscard));
}

}  // namespace
}  // namespace srsr
