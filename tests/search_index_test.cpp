// Tests for the inverted index (search/index.hpp).
#include "search/index.hpp"

#include <gtest/gtest.h>

#include "graph/webgen.hpp"

namespace srsr::search {
namespace {

InvertedIndex tiny_index() {
  // page 0: "a b b"; page 1: "b c"; page 2: "" (empty); page 3: "a a a"
  // vocab: a=0 b=1 c=2 d=3(unused)
  return InvertedIndex({{0, 1, 1}, {1, 2}, {}, {0, 0, 0}}, 4);
}

TEST(InvertedIndex, PostingsAndTermFrequencies) {
  const auto idx = tiny_index();
  EXPECT_EQ(idx.num_documents(), 4u);
  EXPECT_EQ(idx.vocab_size(), 4u);
  const auto a = idx.postings(0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].page, 0u);
  EXPECT_EQ(a[0].tf, 1u);
  EXPECT_EQ(a[1].page, 3u);
  EXPECT_EQ(a[1].tf, 3u);
  const auto b = idx.postings(1);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].tf, 2u);  // page 0 contains b twice
}

TEST(InvertedIndex, DocumentFrequencyAndLengths) {
  const auto idx = tiny_index();
  EXPECT_EQ(idx.document_frequency(0), 2u);
  EXPECT_EQ(idx.document_frequency(2), 1u);
  EXPECT_EQ(idx.document_frequency(3), 0u);
  EXPECT_EQ(idx.document_length(0), 3u);
  EXPECT_EQ(idx.document_length(2), 0u);
  EXPECT_DOUBLE_EQ(idx.average_document_length(), 8.0 / 4.0);
}

TEST(InvertedIndex, PostingsSortedByPage) {
  const auto idx = tiny_index();
  for (u32 t = 0; t < idx.vocab_size(); ++t) {
    const auto posts = idx.postings(t);
    for (std::size_t i = 1; i < posts.size(); ++i)
      EXPECT_LT(posts[i - 1].page, posts[i].page);
  }
}

TEST(InvertedIndex, TotalPostingsAccounting) {
  const auto idx = tiny_index();
  // Distinct (page, term) pairs: p0:{a,b} p1:{b,c} p3:{a} = 5.
  EXPECT_EQ(idx.num_postings(), 5u);
}

TEST(InvertedIndex, RejectsOutOfRangeTerms) {
  EXPECT_THROW(InvertedIndex({{7}}, 4), Error);
  const auto idx = tiny_index();
  EXPECT_THROW(idx.postings(4), Error);
  EXPECT_THROW(idx.document_length(4), Error);
}

TEST(InvertedIndex, EmptyCorpus) {
  const InvertedIndex idx({}, 10);
  EXPECT_EQ(idx.num_documents(), 0u);
  EXPECT_EQ(idx.num_postings(), 0u);
}

TEST(WebGenTerms, DisabledByDefault) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 30;
  const auto corpus = graph::generate_web_corpus(cfg);
  EXPECT_TRUE(corpus.page_terms.empty());
  EXPECT_EQ(corpus.vocab_size, 0u);
}

TEST(WebGenTerms, EveryPageGetsTermsInVocabulary) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 60;
  cfg.num_spam_sources = 4;
  cfg.generate_terms = true;
  cfg.seed = 55;
  const auto corpus = graph::generate_web_corpus(cfg);
  ASSERT_EQ(corpus.page_terms.size(), corpus.num_pages());
  ASSERT_EQ(corpus.source_topic.size(), corpus.num_sources());
  EXPECT_EQ(corpus.vocab_size, cfg.vocab_size);
  for (const auto& terms : corpus.page_terms) {
    EXPECT_GE(terms.size(), 3u);
    for (const u32 t : terms) EXPECT_LT(t, cfg.vocab_size);
  }
  for (const u32 t : corpus.source_topic) EXPECT_LT(t, cfg.num_topics);
}

TEST(WebGenTerms, SpamPagesAreStuffed) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 100;
  cfg.num_spam_sources = 10;
  cfg.generate_terms = true;
  cfg.stuffed_terms = 40;
  cfg.seed = 56;
  const auto corpus = graph::generate_web_corpus(cfg);
  f64 spam_len = 0.0, legit_len = 0.0;
  u64 spam_n = 0, legit_n = 0;
  for (NodeId p = 0; p < corpus.num_pages(); ++p) {
    if (corpus.source_is_spam[corpus.page_source[p]]) {
      spam_len += static_cast<f64>(corpus.page_terms[p].size());
      ++spam_n;
    } else {
      legit_len += static_cast<f64>(corpus.page_terms[p].size());
      ++legit_n;
    }
  }
  EXPECT_GT(spam_len / static_cast<f64>(spam_n),
            legit_len / static_cast<f64>(legit_n) + 0.8 * cfg.stuffed_terms);
}

TEST(WebGenTerms, IndexBuildsOverGeneratedCorpus) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 80;
  cfg.generate_terms = true;
  cfg.seed = 57;
  const auto corpus = graph::generate_web_corpus(cfg);
  const InvertedIndex idx(corpus.page_terms, corpus.vocab_size);
  EXPECT_EQ(idx.num_documents(), corpus.num_pages());
  EXPECT_GT(idx.num_postings(), corpus.num_pages());  // > 1 term/page
}

}  // namespace
}  // namespace srsr::search
