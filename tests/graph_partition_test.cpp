// Tests for ShardPlan (graph/partition.hpp): invariants of both
// partitioners, the SCC-aware acyclic-across-shards guarantee, and the
// degenerate shapes the serve layer must survive (empty graph, one
// giant SCC, fully disconnected nodes, K > V).
#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace srsr::graph {
namespace {

ShardPlan make_plan(const Graph& g, u32 shards, PartitionMode mode) {
  PartitionConfig cfg;
  cfg.num_shards = shards;
  cfg.mode = mode;
  return ShardPlan::build(g, cfg);
}

/// The class-comment invariants, checked from the outside: total
/// coverage, ascending members, (shard_of, local_of) <-> members
/// round-trips, sizes summing to the node count.
void expect_valid_plan(const ShardPlan& plan, const Graph& g) {
  ASSERT_EQ(plan.num_nodes(), g.num_nodes());
  u64 total = 0;
  for (u32 k = 0; k < plan.num_shards(); ++k) {
    const auto members = plan.members(k);
    ASSERT_EQ(members.size(), plan.shard_size(k));
    total += members.size();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(members[i - 1], members[i]);
      }
      EXPECT_EQ(plan.shard_of(members[i]), k);
      EXPECT_EQ(plan.local_of(members[i]), static_cast<NodeId>(i));
      EXPECT_EQ(plan.global_of(k, static_cast<NodeId>(i)), members[i]);
    }
  }
  EXPECT_EQ(total, g.num_nodes());
}

TEST(ShardPlan, IdentityPlanIsOneEmptyShard) {
  const ShardPlan plan;
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(plan.num_nodes(), 0u);
  EXPECT_EQ(plan.shard_size(0), 0u);
}

TEST(ShardPlan, EmptyGraphBothModes) {
  for (const auto mode : {PartitionMode::kHostHash, PartitionMode::kSccAware}) {
    const ShardPlan plan = make_plan(Graph(), 4, mode);
    EXPECT_EQ(plan.num_shards(), 4u);
    EXPECT_EQ(plan.num_nodes(), 0u);
    EXPECT_EQ(plan.num_nonempty_shards(), 0u);
    for (u32 k = 0; k < 4; ++k) EXPECT_EQ(plan.shard_size(k), 0u);
    expect_valid_plan(plan, Graph());
  }
}

TEST(ShardPlan, MoreShardsThanNodes) {
  const Graph g = path(3);
  for (const auto mode : {PartitionMode::kHostHash, PartitionMode::kSccAware}) {
    const ShardPlan plan = make_plan(g, 16, mode);
    EXPECT_EQ(plan.num_shards(), 16u);
    expect_valid_plan(plan, g);
    // Every node landed somewhere; at most 3 shards can be non-empty.
    EXPECT_LE(plan.num_nonempty_shards(), 3u);
    EXPECT_GE(plan.num_nonempty_shards(), 1u);
  }
}

TEST(ShardPlan, SingleGiantSccStaysWhole) {
  // One SCC cannot straddle shards under kSccAware, so the entire cycle
  // lands in one shard and the other shards stay empty — and no edge
  // crosses a boundary.
  const Graph g = cycle(50);
  const ShardPlan plan = make_plan(g, 4, PartitionMode::kSccAware);
  expect_valid_plan(plan, g);
  EXPECT_EQ(plan.num_nonempty_shards(), 1u);
  EXPECT_EQ(plan.count_boundary_edges(g), 0u);
}

TEST(ShardPlan, FullyDisconnectedSpreadsAcrossShards) {
  const Graph g = GraphBuilder(100).build();  // isolated singleton SCCs
  for (const auto mode : {PartitionMode::kHostHash, PartitionMode::kSccAware}) {
    const ShardPlan plan = make_plan(g, 4, mode);
    expect_valid_plan(plan, g);
    EXPECT_EQ(plan.num_nonempty_shards(), 4u);
    EXPECT_EQ(plan.count_boundary_edges(g), 0u);
    // Rough balance: no shard hoards more than half the nodes.
    for (u32 k = 0; k < 4; ++k) EXPECT_LE(plan.shard_size(k), 50u);
  }
}

TEST(ShardPlan, SccAwareCrossShardEdgesPointForward) {
  // The async-sweep precondition: under kSccAware every edge u->v has
  // shard_of(u) <= shard_of(v), so one ascending pass over shards is a
  // topological pass over the condensation.
  Pcg32 rng(91);
  const Graph g = erdos_renyi(200, 0.02, rng);
  const ShardPlan plan = make_plan(g, 5, PartitionMode::kSccAware);
  expect_valid_plan(plan, g);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (const NodeId v : g.out_neighbors(u))
      EXPECT_LE(plan.shard_of(u), plan.shard_of(v))
          << "edge " << u << "->" << v << " points backward";
}

TEST(ShardPlan, SccAwareBandsAreRoughlyBalanced) {
  // 240 singleton SCCs in a path: the band cutter should hand each of
  // the 4 shards about 60 nodes, never an empty or dominant band.
  const Graph g = path(240);
  const ShardPlan plan = make_plan(g, 4, PartitionMode::kSccAware);
  for (u32 k = 0; k < 4; ++k) {
    EXPECT_GE(plan.shard_size(k), 30u);
    EXPECT_LE(plan.shard_size(k), 120u);
  }
}

TEST(ShardPlan, HostHashMatchesDirectHashAssignment) {
  // kHostHash must be a pure function of (node id, K) — the property a
  // multi-process deployment relies on to route updates with no plan
  // object in hand. Verified indirectly: two graphs of the same size
  // produce identical assignments regardless of edges.
  Pcg32 rng(92);
  const Graph a = erdos_renyi(300, 0.01, rng);
  const Graph b = path(300);
  const ShardPlan pa = make_plan(a, 7, PartitionMode::kHostHash);
  const ShardPlan pb = make_plan(b, 7, PartitionMode::kHostHash);
  for (NodeId v = 0; v < 300; ++v)
    EXPECT_EQ(pa.shard_of(v), pb.shard_of(v));
}

TEST(ShardPlan, BuildIsDeterministic) {
  Pcg32 rng(93);
  const Graph g = erdos_renyi(150, 0.03, rng);
  for (const auto mode : {PartitionMode::kHostHash, PartitionMode::kSccAware}) {
    const ShardPlan p1 = make_plan(g, 4, mode);
    const ShardPlan p2 = make_plan(g, 4, mode);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(p1.shard_of(v), p2.shard_of(v));
      EXPECT_EQ(p1.local_of(v), p2.local_of(v));
    }
  }
}

TEST(ShardPlan, CountBoundaryEdgesMatchesBruteForce) {
  Pcg32 rng(94);
  const Graph g = erdos_renyi(120, 0.05, rng);
  for (const auto mode : {PartitionMode::kHostHash, PartitionMode::kSccAware}) {
    const ShardPlan plan = make_plan(g, 3, mode);
    u64 expected = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      for (const NodeId v : g.out_neighbors(u))
        if (plan.shard_of(u) != plan.shard_of(v)) ++expected;
    EXPECT_EQ(plan.count_boundary_edges(g), expected);
  }
}

TEST(ShardPlan, ShardSubgraphKeepsIntraShardEdgesOnly) {
  GraphBuilder b(6);
  b.add_edge(0, 1);  // intra if 0,1 co-sharded
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  for (const auto mode : {PartitionMode::kHostHash, PartitionMode::kSccAware}) {
    const ShardPlan plan = make_plan(g, 2, mode);
    u64 intra_total = 0;
    for (u32 k = 0; k < plan.num_shards(); ++k) {
      const Graph sub = plan.shard_subgraph(g, k);
      ASSERT_EQ(sub.num_nodes(), plan.shard_size(k));
      intra_total += sub.num_edges();
      // Every local edge maps back to a real global edge within shard k.
      for (NodeId lu = 0; lu < sub.num_nodes(); ++lu) {
        const NodeId gu = plan.global_of(k, lu);
        for (const NodeId lv : sub.out_neighbors(lu)) {
          const NodeId gv = plan.global_of(k, lv);
          EXPECT_EQ(plan.shard_of(gv), k);
          bool found = false;
          for (const NodeId w : g.out_neighbors(gu)) found |= (w == gv);
          EXPECT_TRUE(found) << "phantom edge " << gu << "->" << gv;
        }
      }
    }
    EXPECT_EQ(intra_total + plan.count_boundary_edges(g), g.num_edges());
  }
}

TEST(ShardPlan, SingleShardIsIdentityLayout) {
  const Graph g = path(10);
  for (const auto mode : {PartitionMode::kHostHash, PartitionMode::kSccAware}) {
    const ShardPlan plan = make_plan(g, 1, mode);
    EXPECT_EQ(plan.num_shards(), 1u);
    EXPECT_EQ(plan.shard_size(0), 10u);
    for (NodeId v = 0; v < 10; ++v) {
      EXPECT_EQ(plan.shard_of(v), 0u);
      EXPECT_EQ(plan.local_of(v), v);  // ascending members => identity
    }
    EXPECT_EQ(plan.count_boundary_edges(g), 0u);
  }
}

}  // namespace
}  // namespace srsr::graph
