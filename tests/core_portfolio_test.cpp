// Tests for the spammer behavior / portfolio-value model
// (core/portfolio.hpp) — the paper's Sec. 8 program.
#include "core/portfolio.hpp"

#include <gtest/gtest.h>

namespace srsr::core {
namespace {

graph::WebCorpus fixture() {
  graph::WebGenConfig cfg;
  cfg.num_sources = 300;
  cfg.num_spam_sources = 15;
  cfg.seed = 1717;
  return graph::generate_web_corpus(cfg);
}

SpammerModelConfig model_config(const graph::WebCorpus& corpus) {
  SpammerModelConfig cfg;
  cfg.srsr.convergence.tolerance = 1e-10;
  cfg.pagerank.convergence.tolerance = 1e-10;
  cfg.srsr.throttle_mode = ThrottleMode::kTeleportDiscard;
  const auto spam = corpus.spam_sources();
  cfg.defender_seeds.assign(spam.begin(), spam.begin() + 2);
  cfg.defender_top_k = 2 * static_cast<u32>(spam.size());
  return cfg;
}

TEST(CampaignCost, PricesEachLineItem) {
  spam::CampaignReceipt receipt;
  receipt.pages_added = 10;
  receipt.sources_added = 2;
  receipt.links_injected = 3;
  AttackCostModel costs;
  costs.per_page = 1.0;
  costs.per_source = 25.0;
  costs.per_injected_link = 10.0;
  EXPECT_DOUBLE_EQ(campaign_cost(receipt, costs), 10.0 + 50.0 + 30.0);
}

TEST(PortfolioValue, SumsPercentiles) {
  const std::vector<f64> scores{0.1, 0.2, 0.3, 0.4, 0.5};
  // percentile: node 4 = 100, node 0 = 0, node 2 = 50.
  EXPECT_DOUBLE_EQ(portfolio_value(scores, {4, 0, 2}), 150.0);
  EXPECT_DOUBLE_EQ(portfolio_value(scores, {}), 0.0);
}

TEST(SpammerModel, FreeCampaignHasZeroCostAndRoi) {
  const auto corpus = fixture();
  const SpammerModel model(corpus, model_config(corpus));
  const auto eval = model.evaluate(RankingSystem::kPageRank, 0,
                                   spam::CampaignSpec{}, 1);
  EXPECT_DOUBLE_EQ(eval.cost, 0.0);
  EXPECT_DOUBLE_EQ(eval.roi, 0.0);
  EXPECT_NEAR(eval.gain, 0.0, 1e-6);  // no attack, no movement
}

// A genuinely low-ranked target page: the LAST page of a multi-page
// source (front pages collect the front-page-biased in-links; tail
// pages rarely have any).
NodeId low_target(const graph::WebCorpus& corpus) {
  for (u32 s = 200; s < corpus.num_sources(); ++s) {
    if (corpus.source_page_count[s] >= 3)
      return corpus.source_first_page[s] + corpus.source_page_count[s] - 1;
  }
  return corpus.source_first_page[200];
}

TEST(SpammerModel, FarmRaisesPageRankTarget) {
  const auto corpus = fixture();
  const SpammerModel model(corpus, model_config(corpus));
  const NodeId target = low_target(corpus);
  spam::CampaignSpec farm;
  farm.intra_farm_pages = 100;
  const auto eval =
      model.evaluate(RankingSystem::kPageRank, target, farm, 2);
  EXPECT_DOUBLE_EQ(eval.cost, 100.0 * AttackCostModel{}.per_page);
  EXPECT_GT(eval.gain, 10.0);
  EXPECT_GT(eval.roi, 0.0);
}

TEST(SpammerModel, SourceSystemsResistIntraFarmMore) {
  const auto corpus = fixture();
  const SpammerModel model(corpus, model_config(corpus));
  const NodeId target = low_target(corpus);
  spam::CampaignSpec farm;
  farm.intra_farm_pages = 1000;
  const auto pr = model.evaluate(RankingSystem::kPageRank, target, farm, 3);
  const auto sr =
      model.evaluate(RankingSystem::kSourceRankBaseline, target, farm, 3);
  EXPECT_GT(pr.gain, 0.0);
  // PageRank pushes the page essentially to the top; the source system
  // moves less under the same spend — so its ROI is strictly worse.
  EXPECT_LT(sr.roi, pr.roi);
}

TEST(SpammerModel, ReactiveThrottledDefenseBluntsCollusion) {
  const auto corpus = fixture();
  const SpammerModel model(corpus, model_config(corpus));
  const NodeId target = corpus.source_first_page[200];
  spam::CampaignSpec collusion;
  collusion.colluding_sources = 50;
  const auto open =
      model.evaluate(RankingSystem::kSourceRankBaseline, target, collusion, 4);
  const auto defended =
      model.evaluate(RankingSystem::kThrottledSrsr, target, collusion, 4);
  // The same spend buys strictly less against the reactive defense.
  EXPECT_LT(defended.gain, open.gain);
}

TEST(SpammerModel, HijackingIsExpensive) {
  const auto corpus = fixture();
  const SpammerModel model(corpus, model_config(corpus));
  spam::CampaignSpec hijack;
  hijack.hijacked_links = 50;
  const auto eval = model.evaluate(RankingSystem::kPageRank,
                                   corpus.source_first_page[150], hijack, 5);
  EXPECT_DOUBLE_EQ(eval.cost, 50.0 * AttackCostModel{}.per_injected_link);
}

TEST(SpammerModel, PortfolioValueRequiresSourceSystem) {
  const auto corpus = fixture();
  const SpammerModel model(corpus, model_config(corpus));
  EXPECT_THROW(model.source_portfolio_value(RankingSystem::kPageRank, {0}),
               Error);
  const f64 v =
      model.source_portfolio_value(RankingSystem::kSourceRankBaseline, {0, 1});
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 200.0);
}

TEST(SpammerModel, ThrottlingDevaluesSpamPortfolio) {
  // The paper's portfolio metric in action: the defender's throttling
  // must reduce the aggregate value of the spammer's existing holdings.
  const auto corpus = fixture();
  const SpammerModel model(corpus, model_config(corpus));
  const auto spam = corpus.spam_sources();
  const f64 open =
      model.source_portfolio_value(RankingSystem::kSourceRankBaseline, spam);
  const f64 defended =
      model.source_portfolio_value(RankingSystem::kThrottledSrsr, spam);
  EXPECT_LT(defended, 0.8 * open);
}

}  // namespace
}  // namespace srsr::core
