// Tests for summary statistics and vector norms (util/stats.hpp).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace srsr {
namespace {

TEST(Summarize, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<f64> v{3.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<f64> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Quantile, MedianOfOddSample) {
  const std::vector<f64> v{5, 1, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<f64> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(Quantile, Extremes) {
  const std::vector<f64> v{7, 2, 9, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, RejectsBadInput) {
  const std::vector<f64> v{1.0};
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile(v, -0.1), Error);
  EXPECT_THROW(quantile(v, 1.1), Error);
}

TEST(Distances, KnownValues) {
  const std::vector<f64> a{1, 2, 3};
  const std::vector<f64> b{2, 2, 1};
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(l2_distance(a, b), std::sqrt(5.0));
  EXPECT_DOUBLE_EQ(linf_distance(a, b), 2.0);
}

TEST(Distances, ZeroForIdenticalVectors) {
  const std::vector<f64> a{0.1, 0.9, -4.0};
  EXPECT_DOUBLE_EQ(l1_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(l2_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(linf_distance(a, a), 0.0);
}

TEST(Distances, SizeMismatchThrows) {
  const std::vector<f64> a{1, 2};
  const std::vector<f64> b{1};
  EXPECT_THROW(l1_distance(a, b), Error);
  EXPECT_THROW(l2_distance(a, b), Error);
  EXPECT_THROW(linf_distance(a, b), Error);
}

TEST(Distances, NormOrdering) {
  // For any vectors: Linf <= L2 <= L1.
  const std::vector<f64> a{0.3, -1.2, 4.5, 0.0, 2.2};
  const std::vector<f64> b{1.3, 0.0, -0.5, 0.7, 2.0};
  const f64 l1 = l1_distance(a, b);
  const f64 l2 = l2_distance(a, b);
  const f64 li = linf_distance(a, b);
  EXPECT_LE(li, l2 + 1e-15);
  EXPECT_LE(l2, l1 + 1e-15);
}

TEST(KahanSum, MatchesExactSumOnHardCase) {
  // 1 + 1e-16 * 10^8 accumulated naively loses mass; Kahan keeps it.
  std::vector<f64> v{1.0};
  for (int i = 0; i < 100000000 / 1000; ++i) v.push_back(1e-16);
  const f64 kahan = kahan_sum(v);
  EXPECT_NEAR(kahan, 1.0 + 1e-16 * (v.size() - 1), 1e-18);
}

TEST(KahanSum, EmptyIsZero) { EXPECT_DOUBLE_EQ(kahan_sum({}), 0.0); }

}  // namespace
}  // namespace srsr
