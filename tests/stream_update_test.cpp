// Tests for the stream ingest layer (stream/edge_stream.hpp) and the
// mutable row derivation (stream/dynamic_graph.hpp). The load-bearing
// property: after ANY sequence of applied batches, the dynamic row
// store is BITWISE identical to what the static pipeline —
// core::SourceGraph::consensus_matrix(true) — derives from the
// equivalent page graph, and its ThrottleRowStats match
// ThrottleRowStats::of on that matrix. Every downstream incremental
// guarantee stands on this parity.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/source_graph.hpp"
#include "core/source_map.hpp"
#include "core/throttle.hpp"
#include "graph/builder.hpp"
#include "graph/webgen.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/edge_stream.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace srsr::stream {
namespace {

// ---------------------------------------------------------------- //
// Shadow model: a plain page adjacency + page->source assignment the
// tests mutate in step with the stream, then rebuild statically.
// ---------------------------------------------------------------- //

struct Shadow {
  std::vector<std::vector<NodeId>> out;  // sorted distinct
  std::vector<NodeId> page_source;
  u32 num_sources = 0;

  static Shadow of(const graph::WebCorpus& corpus) {
    Shadow s;
    s.page_source = corpus.page_source;
    s.num_sources = corpus.num_sources();
    s.out.resize(corpus.num_pages());
    for (NodeId p = 0; p < corpus.num_pages(); ++p) {
      const auto nbrs = corpus.pages.out_neighbors(p);
      s.out[p].assign(nbrs.begin(), nbrs.end());
      std::sort(s.out[p].begin(), s.out[p].end());
      s.out[p].erase(std::unique(s.out[p].begin(), s.out[p].end()),
                     s.out[p].end());
    }
    return s;
  }

  void insert(NodeId u, NodeId v) {
    auto& row = out[u];
    const auto it = std::lower_bound(row.begin(), row.end(), v);
    if (it == row.end() || *it != v) row.insert(it, v);
  }

  void erase(NodeId u, NodeId v) {
    auto& row = out[u];
    const auto it = std::lower_bound(row.begin(), row.end(), v);
    if (it != row.end() && *it == v) row.erase(it);
  }

  void add_page(NodeId source) {
    out.emplace_back();
    page_source.push_back(source);
    num_sources = std::max(num_sources, static_cast<u32>(source) + 1);
  }

  /// Replays a committed batch, resolving kAddPage hosts through the
  /// dynamic graph's id assignment (applied in the same order).
  void mirror(const UpdateBatch& batch, const DynamicSourceGraph& graph) {
    for (const auto& m : batch.mutations) {
      switch (m.kind) {
        case MutationKind::kInsertLink: insert(m.u, m.v); break;
        case MutationKind::kEraseLink: erase(m.u, m.v); break;
        case MutationKind::kAddPage:
          add_page(*graph.source_id(m.host));
          break;
      }
    }
  }

  rank::StochasticMatrix static_consensus() const {
    graph::GraphBuilder builder(static_cast<NodeId>(out.size()));
    for (NodeId p = 0; p < out.size(); ++p)
      for (const NodeId q : out[p]) builder.add_edge(p, q);
    const auto pages = builder.build();
    const core::SourceMap map(page_source);
    return core::SourceGraph(pages, map)
        .consensus_matrix(/*with_self_edges=*/true);
  }
};

void expect_bitwise_parity(const DynamicSourceGraph& graph,
                           const Shadow& shadow, const std::string& where) {
  const auto dynamic = graph.materialize();
  const auto statics = shadow.static_consensus();
  ASSERT_EQ(dynamic.num_rows(), statics.num_rows()) << where;
  ASSERT_EQ(dynamic.num_entries(), statics.num_entries()) << where;
  EXPECT_EQ(graph.row_entries(), statics.num_entries()) << where;
  for (NodeId r = 0; r < dynamic.num_rows(); ++r) {
    const auto dc = dynamic.row_cols(r);
    const auto sc = statics.row_cols(r);
    ASSERT_EQ(dc.size(), sc.size()) << where << " row " << r;
    for (std::size_t i = 0; i < dc.size(); ++i) {
      EXPECT_EQ(dc[i], sc[i]) << where << " row " << r;
      // Bitwise, not approximate: both derivations must accumulate in
      // the same order.
      EXPECT_EQ(dynamic.row_weights(r)[i], statics.row_weights(r)[i])
          << where << " row " << r << " col " << dc[i];
    }
  }
  const auto expected = core::ThrottleRowStats::of(statics);
  const auto& actual = graph.row_stats();
  for (NodeId r = 0; r < dynamic.num_rows(); ++r) {
    EXPECT_EQ(actual.self[r], expected.self[r]) << where << " row " << r;
    EXPECT_EQ(actual.off[r], expected.off[r]) << where << " row " << r;
    EXPECT_EQ(actual.empty[r], expected.empty[r]) << where << " row " << r;
  }
}

graph::WebCorpus small_corpus(u32 sources = 40, u64 seed = 11) {
  graph::WebGenConfig cfg;
  cfg.num_sources = sources;
  cfg.num_spam_sources = 2;
  cfg.seed = seed;
  return graph::generate_web_corpus(cfg);
}

// ---------------------------------------------------------------- //
// EdgeStream staging semantics
// ---------------------------------------------------------------- //

TEST(EdgeStream, CoalescesLinkOpsLastOpWins) {
  EdgeStream stream(10);
  stream.insert_link(0, 1);
  stream.erase_link(0, 1);
  stream.insert_link(0, 2);
  stream.insert_link(0, 2);  // idempotent re-stage, same slot
  EXPECT_EQ(stream.pending(), 2u);
  const auto batch = stream.commit();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.mutations[0].kind, MutationKind::kEraseLink);
  EXPECT_EQ(batch.mutations[0].u, 0u);
  EXPECT_EQ(batch.mutations[0].v, 1u);
  EXPECT_EQ(batch.mutations[1].kind, MutationKind::kInsertLink);
  EXPECT_EQ(batch.mutations[1].v, 2u);
}

TEST(EdgeStream, ProvisionalPageIdsExtendTheIdSpace) {
  EdgeStream stream(10);
  EXPECT_EQ(stream.add_page("a.example"), 10u);
  EXPECT_EQ(stream.add_page("b.example"), 11u);
  EXPECT_EQ(stream.num_pages(), 12u);
  // Links may reference pages staged earlier in the same batch.
  stream.insert_link(10, 11);
  stream.insert_link(11, 3);
  const auto batch = stream.commit();
  EXPECT_EQ(batch.size(), 4u);
  // The committed pages are now part of the base id space.
  EXPECT_EQ(stream.num_pages(), 12u);
  EXPECT_EQ(stream.add_page("c.example"), 12u);
}

TEST(EdgeStream, RejectsLinksOutsideTheIdSpace) {
  EdgeStream stream(10);
  EXPECT_THROW(stream.insert_link(10, 0), Error);
  EXPECT_THROW(stream.erase_link(0, 99), Error);
  EXPECT_THROW(stream.add_page(""), Error);
  EXPECT_EQ(stream.pending(), 0u);
}

TEST(EdgeStream, SequenceNumbersAreMonotone) {
  EdgeStream stream(4);
  stream.insert_link(0, 1);
  const auto first = stream.commit();
  const auto empty = stream.commit();
  stream.insert_link(1, 2);
  const auto third = stream.commit();
  EXPECT_GT(first.sequence, 0u);
  EXPECT_LT(first.sequence, empty.sequence);
  EXPECT_LT(empty.sequence, third.sequence);
  EXPECT_TRUE(empty.empty());
}

// ---------------------------------------------------------------- //
// DynamicSourceGraph row derivation parity
// ---------------------------------------------------------------- //

TEST(DynamicSourceGraph, SeedStateMatchesStaticDerivation) {
  const auto corpus = small_corpus();
  const core::SourceMap map(corpus.page_source);
  const DynamicSourceGraph graph(corpus.pages, map, corpus.source_hosts);
  const auto shadow = Shadow::of(corpus);
  expect_bitwise_parity(graph, shadow, "seed");
  EXPECT_EQ(graph.num_pages(), corpus.num_pages());
  EXPECT_EQ(graph.num_sources(), corpus.num_sources());
  EXPECT_EQ(graph.source_of_page(0), corpus.page_source[0]);
  EXPECT_EQ(*graph.source_id(corpus.source_hosts[3]), 3u);
  EXPECT_FALSE(graph.source_id("nowhere.example").has_value());
}

TEST(DynamicSourceGraph, RandomizedBatchesKeepBitwiseParity) {
  const auto corpus = small_corpus(30, 7);
  const core::SourceMap map(corpus.page_source);
  DynamicSourceGraph graph(corpus.pages, map, corpus.source_hosts);
  auto shadow = Shadow::of(corpus);
  EdgeStream stream(graph.num_pages());
  Pcg32 rng(99);

  for (u32 round = 0; round < 25; ++round) {
    const u32 ops = 1 + rng.next_below(12);
    for (u32 i = 0; i < ops; ++i) {
      const NodeId u = rng.next_below(stream.num_pages());
      const NodeId v = rng.next_below(stream.num_pages());
      if (rng.next_below(3) == 0)
        stream.erase_link(u, v);
      else
        stream.insert_link(u, v);
    }
    if (round % 5 == 4)
      stream.add_page(corpus.source_hosts[rng.next_below(
          corpus.num_sources())]);
    const auto batch = stream.commit();
    graph.apply(batch);
    shadow.mirror(batch, graph);
    expect_bitwise_parity(graph, shadow, "round " + std::to_string(round));
  }
}

TEST(DynamicSourceGraph, OutDegreeDroppingToZeroBecomesPureSelfLoop) {
  const auto corpus = small_corpus(20, 3);
  const core::SourceMap map(corpus.page_source);
  DynamicSourceGraph graph(corpus.pages, map, corpus.source_hosts);
  auto shadow = Shadow::of(corpus);
  EdgeStream stream(graph.num_pages());

  // Strip EVERY out-link of source 5's pages: the augmented row must
  // collapse to the pure self-loop {(5, 1.0)}.
  for (NodeId p = 0; p < corpus.num_pages(); ++p) {
    if (corpus.page_source[p] != 5) continue;
    for (const NodeId q : corpus.pages.out_neighbors(p))
      stream.erase_link(p, q);
  }
  const auto batch = stream.commit();
  const auto result = graph.apply(batch);
  shadow.mirror(batch, graph);
  ASSERT_EQ(result.dirty.size(), 1u);
  EXPECT_EQ(result.dirty[0].row, 5u);
  ASSERT_EQ(graph.row_cols(5).size(), 1u);
  EXPECT_EQ(graph.row_cols(5)[0], 5u);
  EXPECT_EQ(graph.row_weights(5)[0], 1.0);
  expect_bitwise_parity(graph, shadow, "emptied source");
}

TEST(DynamicSourceGraph, ApplyReportsPreEditRowsAndNoops) {
  const auto corpus = small_corpus(20, 5);
  const core::SourceMap map(corpus.page_source);
  DynamicSourceGraph graph(corpus.pages, map, corpus.source_hosts);

  const NodeId page = corpus.source_first_page[4];
  const std::vector<NodeId> before_cols(graph.row_cols(4).begin(),
                                        graph.row_cols(4).end());
  const std::vector<f64> before_weights(graph.row_weights(4).begin(),
                                        graph.row_weights(4).end());

  EdgeStream stream(graph.num_pages());
  stream.insert_link(page, corpus.source_first_page[9]);
  stream.erase_link(corpus.source_first_page[10],
                    corpus.source_first_page[10]);  // absent: a no-op
  const auto result = graph.apply(stream.commit());

  EXPECT_EQ(result.applied, 1u);
  EXPECT_GE(result.noops, 1u);
  ASSERT_EQ(result.dirty.size(), 1u);
  EXPECT_EQ(result.dirty[0].row, 4u);
  EXPECT_EQ(result.dirty[0].old_cols, before_cols);
  EXPECT_EQ(result.dirty[0].old_weights, before_weights);
}

TEST(DynamicSourceGraph, AddPageGrowsSourcesAndKeepsParity) {
  const auto corpus = small_corpus(15, 21);
  const core::SourceMap map(corpus.page_source);
  DynamicSourceGraph graph(corpus.pages, map, corpus.source_hosts);
  auto shadow = Shadow::of(corpus);
  EdgeStream stream(graph.num_pages());

  // A brand-new host: its source is appended as a pure self-loop even
  // before any of its pages link out.
  const NodeId p1 = stream.add_page("fresh.example");
  const auto grow = stream.commit();
  const auto grown = graph.apply(grow);
  shadow.mirror(grow, graph);
  EXPECT_EQ(grown.new_sources, 1u);
  EXPECT_EQ(grown.dirty.size(), 0u);  // link-less page dirties nothing
  const NodeId fresh = *graph.source_id("fresh.example");
  EXPECT_EQ(fresh, corpus.num_sources());
  EXPECT_EQ(graph.source_of_page(p1), fresh);
  expect_bitwise_parity(graph, shadow, "grown");

  // Linking from the new page dirties the NEW row; a second page of the
  // same host reuses the source id.
  const NodeId p2 = stream.add_page("fresh.example");
  stream.insert_link(p1, 0);
  stream.insert_link(p2, corpus.source_first_page[2]);
  const auto link = stream.commit();
  const auto linked = graph.apply(link);
  shadow.mirror(link, graph);
  EXPECT_EQ(linked.new_sources, 0u);
  ASSERT_EQ(linked.dirty.size(), 1u);
  EXPECT_EQ(linked.dirty[0].row, fresh);
  expect_bitwise_parity(graph, shadow, "linked growth");
}

TEST(DynamicSourceGraph, TopologyMatchesStaticSourceGraph) {
  const auto corpus = small_corpus(25, 13);
  const core::SourceMap map(corpus.page_source);
  DynamicSourceGraph graph(corpus.pages, map, corpus.source_hosts);
  EdgeStream stream(graph.num_pages());
  stream.insert_link(corpus.source_first_page[1], corpus.source_first_page[7]);
  stream.insert_link(corpus.source_first_page[3], corpus.source_first_page[1]);
  const auto batch = stream.commit();
  graph.apply(batch);

  auto shadow = Shadow::of(corpus);
  shadow.mirror(batch, graph);
  graph::GraphBuilder builder(static_cast<NodeId>(shadow.out.size()));
  for (NodeId p = 0; p < shadow.out.size(); ++p)
    for (const NodeId q : shadow.out[p]) builder.add_edge(p, q);
  const auto pages = builder.build();
  const core::SourceMap map2(shadow.page_source);
  const core::SourceGraph sg(pages, map2);

  const auto topo = graph.topology();
  ASSERT_EQ(topo.num_nodes(), sg.topology().num_nodes());
  ASSERT_EQ(topo.num_edges(), sg.topology().num_edges());
  for (NodeId s = 0; s < topo.num_nodes(); ++s) {
    const auto a = topo.out_neighbors(s);
    const auto b = sg.topology().out_neighbors(s);
    ASSERT_EQ(a.size(), b.size()) << "source " << s;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i], b[i]) << "source " << s;
  }
}

TEST(DynamicSourceGraph, RejectsOutOfRangeBatch) {
  const auto corpus = small_corpus(10, 2);
  const core::SourceMap map(corpus.page_source);
  DynamicSourceGraph graph(corpus.pages, map, corpus.source_hosts);
  UpdateBatch bad;
  bad.mutations.push_back(
      {MutationKind::kInsertLink, graph.num_pages() + 5, 0, ""});
  EXPECT_THROW(graph.apply(bad), Error);
}

}  // namespace
}  // namespace srsr::stream
