// Tests for the attack injectors (spam/attacks.hpp).
#include "spam/attacks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/srsr.hpp"

namespace srsr::spam {
namespace {

graph::WebCorpus fixture_corpus(u64 seed = 404) {
  graph::WebGenConfig cfg;
  cfg.num_sources = 60;
  cfg.num_spam_sources = 4;
  cfg.seed = seed;
  return graph::generate_web_corpus(cfg);
}

void expect_consistent(const graph::WebCorpus& c) {
  EXPECT_EQ(c.page_source.size(), c.pages.num_nodes());
  EXPECT_EQ(c.source_page_count.size(), c.num_sources());
  u64 total = 0;
  for (const u32 n : c.source_page_count) total += n;
  EXPECT_EQ(total, c.num_pages());
  for (const NodeId s : c.page_source) EXPECT_LT(s, c.num_sources());
}

TEST(IntraSourceFarm, AddsPagesLinkingToTarget) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[5];
  const auto attacked = add_intra_source_farm(corpus, target, 10);
  expect_consistent(attacked);
  EXPECT_EQ(attacked.num_pages(), corpus.num_pages() + 10);
  EXPECT_EQ(attacked.num_sources(), corpus.num_sources());
  for (NodeId p = corpus.num_pages(); p < attacked.num_pages(); ++p) {
    EXPECT_EQ(attacked.page_source[p], corpus.page_source[target]);
    EXPECT_TRUE(attacked.pages.has_edge(p, target));
    EXPECT_EQ(attacked.pages.out_degree(p), 1u);
  }
}

TEST(IntraSourceFarm, OriginalEdgesUntouched) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[5];
  const auto attacked = add_intra_source_farm(corpus, target, 5);
  for (NodeId p = 0; p < corpus.num_pages(); ++p) {
    ASSERT_EQ(attacked.pages.out_degree(p), corpus.pages.out_degree(p));
  }
}

TEST(IntraSourceFarm, OriginalCorpusNotMutated) {
  const auto corpus = fixture_corpus();
  const NodeId before_pages = corpus.num_pages();
  const auto attacked =
      add_intra_source_farm(corpus, corpus.source_first_page[3], 7);
  EXPECT_EQ(corpus.num_pages(), before_pages);
  EXPECT_EQ(attacked.num_pages(), before_pages + 7);
}

TEST(IntraSourceFarm, ZeroPagesIsIdentityOnEdges) {
  const auto corpus = fixture_corpus();
  const auto attacked =
      add_intra_source_farm(corpus, corpus.source_first_page[3], 0);
  EXPECT_EQ(attacked.pages, corpus.pages);
}

TEST(CrossSourceFarm, PagesLandInColludingSource) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[5];
  const NodeId colluder = 9;
  ASSERT_NE(corpus.page_source[target], colluder);
  const auto attacked = add_cross_source_farm(corpus, target, colluder, 8);
  expect_consistent(attacked);
  EXPECT_EQ(attacked.source_page_count[colluder],
            corpus.source_page_count[colluder] + 8);
  for (NodeId p = corpus.num_pages(); p < attacked.num_pages(); ++p) {
    EXPECT_EQ(attacked.page_source[p], colluder);
    EXPECT_TRUE(attacked.pages.has_edge(p, target));
  }
}

TEST(CrossSourceFarm, RejectsSameSourceColluder) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[5];
  EXPECT_THROW(add_cross_source_farm(corpus, target, 5, 3), Error);
}

TEST(CollusionNetwork, CreatesFreshSources) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[7];
  const auto attacked = add_colluding_sources(corpus, target, 5, 3);
  expect_consistent(attacked);
  EXPECT_EQ(attacked.num_sources(), corpus.num_sources() + 5);
  EXPECT_EQ(attacked.num_pages(), corpus.num_pages() + 15);
  // Every colluding page links to the target; sources are self-linked.
  for (u32 s = corpus.num_sources(); s < attacked.num_sources(); ++s) {
    EXPECT_EQ(attacked.source_page_count[s], 3u);
    EXPECT_FALSE(attacked.source_is_spam[s]);  // attacker pages unlabeled
  }
  for (NodeId p = corpus.num_pages(); p < attacked.num_pages(); ++p)
    EXPECT_TRUE(attacked.pages.has_edge(p, target));
}

TEST(CollusionNetwork, SinglePageSourcesGetSelfLoop) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[7];
  const auto attacked = add_colluding_sources(corpus, target, 2, 1);
  for (NodeId p = corpus.num_pages(); p < attacked.num_pages(); ++p)
    EXPECT_TRUE(attacked.pages.has_edge(p, p));
}

TEST(LinkExchange, AllPairsTradeLinks) {
  const auto corpus = fixture_corpus();
  const std::vector<NodeId> ring{3, 8, 15};
  Pcg32 rng(11);
  const auto attacked = add_link_exchange(corpus, ring, rng);
  expect_consistent(attacked);
  EXPECT_EQ(attacked.num_pages(), corpus.num_pages());
  // Each source's front page gains in-links from every partner source.
  for (const NodeId si : ring) {
    for (const NodeId sj : ring) {
      if (si == sj) continue;
      const NodeId front = corpus.source_first_page[sj];
      bool found = false;
      for (NodeId p = 0; p < corpus.num_pages() && !found; ++p)
        found = corpus.page_source[p] == si &&
                attacked.pages.has_edge(p, front) &&
                !corpus.pages.has_edge(p, front);
      // The added link may coincide with an existing organic one; at
      // minimum the edge must exist post-attack.
      bool exists = false;
      for (NodeId p = 0; p < corpus.num_pages() && !exists; ++p)
        exists = corpus.page_source[p] == si &&
                 attacked.pages.has_edge(p, front);
      EXPECT_TRUE(exists) << si << " -> " << sj;
    }
  }
}

TEST(LinkExchange, RaisesMembersSourceRank) {
  // Pooling resources must lift all members of the ring under the
  // baseline source ranking.
  const auto corpus = fixture_corpus();
  Pcg32 rng(12);
  // Pick three bottom-half sources.
  const std::vector<NodeId> ring{40, 45, 50};
  const auto attacked = add_link_exchange(corpus, ring, rng);
  const core::SourceMap before_map(corpus.page_source);
  const core::SourceMap after_map(attacked.page_source);
  const core::SpamResilientSourceRank before(corpus.pages, before_map);
  const core::SpamResilientSourceRank after(attacked.pages, after_map);
  const auto b = before.rank_baseline();
  const auto a = after.rank_baseline();
  u32 raised = 0;
  for (const NodeId s : ring) raised += (a.scores[s] > b.scores[s]);
  EXPECT_GE(raised, 2u);  // at least most of the ring profits
}

TEST(LinkExchange, RejectsDegenerateRings) {
  const auto corpus = fixture_corpus();
  Pcg32 rng(13);
  EXPECT_THROW(add_link_exchange(corpus, {3}, rng), Error);
  EXPECT_THROW(add_link_exchange(corpus, {3, corpus.num_sources()}, rng),
               Error);
}

TEST(Hijack, InsertsLinksFromVictims) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[11];
  const std::vector<NodeId> victims{1, 5, 9};
  const auto attacked = add_hijack_links(corpus, victims, target);
  expect_consistent(attacked);
  EXPECT_EQ(attacked.num_pages(), corpus.num_pages());  // no new pages
  for (const NodeId v : victims) EXPECT_TRUE(attacked.pages.has_edge(v, target));
}

TEST(Hijack, RejectsOutOfRangeVictim) {
  const auto corpus = fixture_corpus();
  EXPECT_THROW(
      add_hijack_links(corpus, {corpus.num_pages()}, 0), Error);
}

TEST(Honeypot, BuildsLuredSourceForwardingToTarget) {
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[13];
  Pcg32 rng(5);
  const auto attacked = add_honeypot(corpus, target, 4, 10, rng);
  expect_consistent(attacked);
  EXPECT_EQ(attacked.num_sources(), corpus.num_sources() + 1);
  const NodeId front = corpus.num_pages();  // honeypot's first page
  EXPECT_TRUE(attacked.pages.has_edge(front, target));
  // Lured in-links exist from pre-existing pages.
  u64 lured = 0;
  for (NodeId p = 0; p < corpus.num_pages(); ++p)
    lured += attacked.pages.has_edge(p, front);
  EXPECT_GE(lured, 1u);
  // Lures never come from labeled spam sources.
  for (NodeId p = 0; p < corpus.num_pages(); ++p)
    if (attacked.pages.has_edge(p, front))
      EXPECT_FALSE(corpus.source_is_spam[corpus.page_source[p]]);
}

TEST(SelectAttackTargets, RespectsConstraints) {
  const auto corpus = fixture_corpus();
  const u32 ns = corpus.num_sources();
  // Synthetic scores: source id = rank (higher id = higher score).
  std::vector<f64> scores(ns);
  for (u32 s = 0; s < ns; ++s) scores[s] = static_cast<f64>(s);
  std::vector<f64> kappa(ns, 0.0);
  kappa[2] = 1.0;  // throttled: ineligible
  Pcg32 rng(6);
  const auto targets = select_attack_targets(corpus, scores, kappa, 5, rng);
  EXPECT_EQ(targets.size(), 5u);
  std::set<NodeId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique.size(), 5u);
  for (const NodeId s : targets) {
    EXPECT_LT(s, ns / 2);  // bottom 50% by construction
    EXPECT_NE(s, 2u);
    EXPECT_FALSE(corpus.source_is_spam[s]);
  }
}

TEST(SelectAttackTargets, ThrowsWhenNotEnoughEligible) {
  const auto corpus = fixture_corpus();
  const u32 ns = corpus.num_sources();
  std::vector<f64> scores(ns, 1.0);
  std::vector<f64> kappa(ns, 1.0);  // everything throttled
  Pcg32 rng(7);
  EXPECT_THROW(select_attack_targets(corpus, scores, kappa, 1, rng), Error);
}

TEST(RandomPageOf, ReturnsPageOfRequestedSource) {
  const auto corpus = fixture_corpus();
  Pcg32 rng(8);
  for (int i = 0; i < 50; ++i) {
    const NodeId s = rng.next_below(corpus.num_sources());
    const NodeId p = random_page_of(corpus, s, rng);
    EXPECT_EQ(corpus.page_source[p], s);
  }
}

TEST(Attacks, ComposeSequentially) {
  // Case-style composition: farm then hijack then honeypot, side tables
  // stay consistent throughout.
  const auto corpus = fixture_corpus();
  const NodeId target = corpus.source_first_page[20];
  Pcg32 rng(9);
  auto attacked = add_intra_source_farm(corpus, target, 10);
  attacked = add_hijack_links(attacked, {0, 1}, target);
  attacked = add_honeypot(attacked, target, 3, 5, rng);
  expect_consistent(attacked);
  EXPECT_EQ(attacked.num_pages(), corpus.num_pages() + 13);
  EXPECT_EQ(attacked.num_sources(), corpus.num_sources() + 1);
}

}  // namespace
}  // namespace srsr::spam
