// Tests for the BV-style CompressedGraph (graph/compressed.hpp):
// exact round-trips over many graph families, plus compression-quality
// sanity on web-like inputs.
#include "graph/compressed.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/webgen.hpp"
#include "util/rng.hpp"

namespace srsr::graph {
namespace {

TEST(CompressedGraph, EmptyGraph) {
  const Graph g;
  const CompressedGraph c(g);
  EXPECT_EQ(c.num_nodes(), 0u);
  EXPECT_EQ(c.num_edges(), 0u);
  EXPECT_EQ(c.decompress(), g);
}

TEST(CompressedGraph, SingleNodeNoEdges) {
  GraphBuilder b(1);
  const Graph g = b.build();
  const CompressedGraph c(g);
  EXPECT_EQ(c.out_degree(0), 0u);
  EXPECT_EQ(c.decompress(), g);
}

TEST(CompressedGraph, SelfLoopOnly) {
  GraphBuilder b(3);
  b.add_edge(1, 1);
  const Graph g = b.build();
  EXPECT_EQ(CompressedGraph(g).decompress(), g);
}

TEST(CompressedGraph, ConsecutiveRunBecomesInterval) {
  // Node 0 links to 10..29 — one long interval.
  GraphBuilder b(40);
  for (NodeId v = 10; v < 30; ++v) b.add_edge(0, v);
  const Graph g = b.build();
  const CompressedGraph c(g);
  EXPECT_EQ(c.decompress(), g);
  // Interval coding must crush this: far fewer than 6 bits/edge.
  EXPECT_LT(c.bits_per_edge(), 6.0);
}

TEST(CompressedGraph, MixedIntervalsAndResiduals) {
  GraphBuilder b(100);
  // interval [20,27], residuals {3, 50, 90}, interval [60,65]
  for (NodeId v = 20; v <= 27; ++v) b.add_edge(5, v);
  for (NodeId v = 60; v <= 65; ++v) b.add_edge(5, v);
  b.add_edge(5, 3);
  b.add_edge(5, 50);
  b.add_edge(5, 90);
  const Graph g = b.build();
  std::vector<NodeId> decoded;
  CompressedGraph(g).decode(5, decoded);
  EXPECT_EQ(decoded.size(), g.out_degree(5));
  const auto expect = g.out_neighbors(5);
  for (std::size_t i = 0; i < decoded.size(); ++i)
    EXPECT_EQ(decoded[i], expect[i]);
}

TEST(CompressedGraph, BackwardGapsEncodeFine) {
  // Successors entirely below the node id exercise the zig-zag path.
  GraphBuilder b(100);
  b.add_edge(99, 0);
  b.add_edge(99, 1);
  b.add_edge(99, 98);
  const Graph g = b.build();
  EXPECT_EQ(CompressedGraph(g).decompress(), g);
}

TEST(CompressedGraph, OutDegreeWithoutFullDecode) {
  const Graph g = complete(20);
  const CompressedGraph c(g);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(c.out_degree(u), 19u);
}

TEST(CompressedGraph, DecodeOutOfRangeThrows) {
  const Graph g = cycle(4);
  const CompressedGraph c(g);
  std::vector<NodeId> out;
  EXPECT_THROW(c.decode(4, out), Error);
  EXPECT_THROW(c.out_degree(4), Error);
}

TEST(CompressedGraph, CompleteGraphIsOneInterval) {
  const Graph g = complete(50);
  const CompressedGraph c(g);
  EXPECT_EQ(c.decompress(), g);
  EXPECT_LT(c.bits_per_edge(), 1.0);  // interval coding wins massively
}

TEST(CompressedGraph, CompressesWebCorpusWellAndExactly) {
  WebGenConfig cfg;
  cfg.num_sources = 400;
  cfg.num_spam_sources = 10;
  cfg.seed = 4242;
  const WebCorpus corpus = generate_web_corpus(cfg);
  const CompressedGraph c(corpus.pages);
  EXPECT_EQ(c.decompress(), corpus.pages);
  // Web-like locality should beat the raw 32 bits/edge comfortably.
  EXPECT_LT(c.bits_per_edge(), 20.0);
  EXPECT_LT(c.memory_bytes(),
            corpus.pages.memory_bytes());
}

// Property: exact round-trip over random graph families.
struct RoundTripCase {
  const char* name;
  u64 seed;
  f64 p;
  NodeId n;
};

class CompressedRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CompressedRoundTrip, ErdosRenyiRoundTrips) {
  const auto param = GetParam();
  Pcg32 rng(param.seed);
  const Graph g = erdos_renyi(param.n, param.p, rng);
  const CompressedGraph c(g);
  EXPECT_EQ(c.num_edges(), g.num_edges());
  EXPECT_EQ(c.decompress(), g);
}

INSTANTIATE_TEST_SUITE_P(
    Density, CompressedRoundTrip,
    ::testing::Values(RoundTripCase{"sparse", 1, 0.002, 500},
                      RoundTripCase{"medium", 2, 0.02, 300},
                      RoundTripCase{"dense", 3, 0.3, 120},
                      RoundTripCase{"verydense", 4, 0.8, 60},
                      RoundTripCase{"tiny", 5, 0.5, 5}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.name;
    });

TEST(CompressedGraph, BarabasiAlbertRoundTrips) {
  Pcg32 rng(77);
  const Graph g = barabasi_albert(800, 4, rng);
  EXPECT_EQ(CompressedGraph(g).decompress(), g);
}

// --- Reference (copy-list) compression.

/// Many consecutive nodes sharing one successor list: the best case
/// for reference compression.
Graph shared_list_graph(NodeId n) {
  GraphBuilder b(n);
  const std::vector<NodeId> list{3, 9, 27, 81, 120, 200, 301, 444};
  for (NodeId u = 500; u < n; ++u)
    for (const NodeId v : list) b.add_edge(u, v);
  return b.build();
}

TEST(ReferenceCompression, SharedListsRoundTripAndShrink) {
  const Graph g = shared_list_graph(1000);
  const CompressedGraph with_refs(g);
  CompressedGraph::Options no_refs;
  no_refs.window = 0;
  const CompressedGraph without(g, no_refs);
  EXPECT_EQ(with_refs.decompress(), g);
  EXPECT_EQ(without.decompress(), g);
  // Copying an identical list costs a few gammas; re-encoding 8
  // scattered residuals costs far more.
  EXPECT_LT(with_refs.bits_per_edge(), 0.5 * without.bits_per_edge());
  EXPECT_GT(with_refs.reference_rate(), 0.30);  // most of nodes 500+
  EXPECT_DOUBLE_EQ(without.reference_rate(), 0.0);
}

TEST(ReferenceCompression, PartialOverlapRoundTrips) {
  // Each node copies most of its predecessor's list but adds/drops a
  // couple of elements — the copy-run + extras path.
  GraphBuilder b(400);
  Pcg32 rng(123);
  std::vector<NodeId> base{10, 20, 30, 40, 50, 60, 70};
  for (NodeId u = 100; u < 400; ++u) {
    for (const NodeId v : base) b.add_edge(u, v);
    b.add_edge(u, rng.next_below(90));             // a private extra
    if (u % 3 == 0) b.add_edge(u, 95);             // occasional shared extra
  }
  const Graph g = b.build();
  EXPECT_EQ(CompressedGraph(g).decompress(), g);
}

TEST(ReferenceCompression, ChainCapIsRespected) {
  // A long run of identical lists wants an unbounded reference chain;
  // the cap must break it and the result must still round-trip.
  const Graph g = shared_list_graph(2000);
  CompressedGraph::Options opts;
  opts.max_ref_chain = 1;
  const CompressedGraph c(g, opts);
  EXPECT_EQ(c.decompress(), g);
  // The cap bounds chain DEPTH (decode cost), not the reference rate:
  // many nodes may share one chain-0 anchor inside the window. It must
  // still leave plenty of references in play.
  EXPECT_GT(c.reference_rate(), 0.30);
  EXPECT_LT(c.reference_rate(), 1.0);
}

TEST(ReferenceCompression, WindowZeroMatchesLegacyEncoding) {
  Pcg32 rng(321);
  const Graph g = erdos_renyi(200, 0.05, rng);
  CompressedGraph::Options no_refs;
  no_refs.window = 0;
  const CompressedGraph c(g, no_refs);
  EXPECT_EQ(c.decompress(), g);
  EXPECT_DOUBLE_EQ(c.reference_rate(), 0.0);
}

TEST(ReferenceCompression, NeverWorseThanNoReference) {
  // The encoder compares costs and falls back to r = 0, so enabling
  // the window can only shrink the payload.
  Pcg32 rng(99);
  for (const f64 p : {0.01, 0.1}) {
    const Graph g = erdos_renyi(300, p, rng);
    CompressedGraph::Options no_refs;
    no_refs.window = 0;
    EXPECT_LE(CompressedGraph(g).bits_per_edge(),
              CompressedGraph(g, no_refs).bits_per_edge() + 1e-12);
  }
}

TEST(Scanner, MatchesPerNodeDecode) {
  Pcg32 rng(555);
  const Graph g = erdos_renyi(300, 0.04, rng);
  const CompressedGraph c(g);
  CompressedGraph::Scanner scan(c);
  std::vector<NodeId> seq, rnd;
  NodeId count = 0;
  while (scan.next(seq)) {
    c.decode(scan.last(), rnd);
    ASSERT_EQ(seq, rnd) << "node " << scan.last();
    ++count;
  }
  EXPECT_EQ(count, g.num_nodes());
  // Exhausted scanner stays exhausted.
  EXPECT_FALSE(scan.next(seq));
}

TEST(Scanner, HandlesReferenceHeavyGraphs) {
  const Graph g = shared_list_graph(1500);
  const CompressedGraph c(g);
  EXPECT_GT(c.reference_rate(), 0.2);
  CompressedGraph::Scanner scan(c);
  std::vector<NodeId> nbrs;
  u64 edges = 0;
  while (scan.next(nbrs)) edges += nbrs.size();
  EXPECT_EQ(edges, g.num_edges());
}

TEST(Scanner, WorksWithWindowZero) {
  Pcg32 rng(556);
  const Graph g = erdos_renyi(100, 0.05, rng);
  CompressedGraph::Options opts;
  opts.window = 0;
  const CompressedGraph c(g, opts);
  CompressedGraph::Scanner scan(c);
  std::vector<NodeId> nbrs;
  NodeId count = 0;
  while (scan.next(nbrs)) ++count;
  EXPECT_EQ(count, g.num_nodes());
}

class ReferenceWindowSweep : public ::testing::TestWithParam<u32> {};

TEST_P(ReferenceWindowSweep, AllWindowsRoundTrip) {
  Pcg32 rng(456 + GetParam());
  const Graph g = erdos_renyi(250, 0.04, rng);
  CompressedGraph::Options opts;
  opts.window = GetParam();
  EXPECT_EQ(CompressedGraph(g, opts).decompress(), g);
}

INSTANTIATE_TEST_SUITE_P(Windows, ReferenceWindowSweep,
                         ::testing::Values(0u, 1u, 2u, 7u, 16u));

}  // namespace
}  // namespace srsr::graph
