// Tests for the span tracer (obs/span.hpp): enable/disable gating,
// same-thread nesting through the thread-local cursor, explicit
// cross-thread context hand-off, ring wrap-around, and the end-to-end
// structural contract — a traced RecomputePipeline publish yields a
// serve.recompute span whose descendants are the solver stages. Runs
// under the "tsan" ctest label: spans record from the pipeline worker
// and reader threads concurrently.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/srsr.hpp"
#include "graph/webgen.hpp"
#include "serve/query.hpp"
#include "serve/recompute.hpp"
#include "serve/snapshot.hpp"
#include "serve/store.hpp"
#include "util/parallel.hpp"

namespace srsr::obs {
namespace {

/// Every test owns the global tracing state: start clean, leave clean.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(true);
    clear_spans();
  }
  void TearDown() override {
    set_tracing_enabled(false);
    clear_spans();
  }
};

const SpanRecord* find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  for (const auto& s : spans)
    if (name == s.name) return &s;
  return nullptr;
}

TEST_F(SpanTest, DisabledSpanRecordsNothing) {
  set_tracing_enabled(false);
  {
    Span outer("outer");
    EXPECT_FALSE(outer.active());
    EXPECT_FALSE(outer.context().valid());
    Span inner("inner");
    EXPECT_FALSE(inner.active());
  }
  EXPECT_TRUE(collect_spans().empty());
  EXPECT_FALSE(current_span_context().valid());
}

TEST_F(SpanTest, RootSpanStartsFreshTrace) {
  {
    Span root("root");
    EXPECT_TRUE(root.active());
    EXPECT_TRUE(root.context().valid());
    EXPECT_EQ(current_span_context().span_id, root.context().span_id);
  }
  EXPECT_FALSE(current_span_context().valid());

  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name), "root");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_NE(spans[0].trace_id, 0u);
}

TEST_F(SpanTest, SameThreadSpansNest) {
  {
    Span outer("outer");
    Span mid("mid");
    { Span leaf("leaf"); }
    EXPECT_EQ(current_span_context().span_id, mid.context().span_id);
  }
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 3u);
  const auto* outer = find_span(spans, "outer");
  const auto* mid = find_span(spans, "mid");
  const auto* leaf = find_span(spans, "leaf");
  ASSERT_TRUE(outer && mid && leaf);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(mid->parent_id, outer->span_id);
  EXPECT_EQ(leaf->parent_id, mid->span_id);
  // One trace end to end.
  EXPECT_EQ(mid->trace_id, outer->trace_id);
  EXPECT_EQ(leaf->trace_id, outer->trace_id);
  // Durations nest: the leaf cannot outlast its ancestors.
  EXPECT_LE(leaf->duration_ns, outer->duration_ns);
}

TEST_F(SpanTest, ExplicitFinishIsIdempotentAndPopsCursor) {
  Span outer("outer");
  Span inner("inner");
  inner.finish();
  inner.finish();  // second finish: no double record
  EXPECT_EQ(current_span_context().span_id, outer.context().span_id);
  outer.finish();
  const auto spans = collect_spans();
  EXPECT_EQ(spans.size(), 2u);
}

TEST_F(SpanTest, CrossThreadHandOffLinksTraces) {
  SpanContext handed;
  {
    Span request("request");
    handed = current_span_context();
    std::thread worker([handed] {
      // Rule 2: the cursor does not follow threads; the explicit-parent
      // constructor does.
      Span work("worker.task", handed);
      Span child("worker.child");  // rule 1 under the worker span
      (void)child;
    });
    worker.join();
  }
  const auto spans = collect_spans();
  ASSERT_EQ(spans.size(), 3u);
  const auto* request = find_span(spans, "request");
  const auto* work = find_span(spans, "worker.task");
  const auto* child = find_span(spans, "worker.child");
  ASSERT_TRUE(request && work && child);
  EXPECT_EQ(work->trace_id, request->trace_id);
  EXPECT_EQ(work->parent_id, request->span_id);
  EXPECT_EQ(child->parent_id, work->span_id);
  EXPECT_NE(work->thread_index, request->thread_index);
}

TEST_F(SpanTest, NewThreadWithoutHandOffStartsItsOwnTrace) {
  Span request("request");
  u64 worker_trace = 0;
  std::thread worker([&worker_trace] {
    Span work("worker.task");
    worker_trace = work.context().trace_id;
  });
  worker.join();
  EXPECT_NE(worker_trace, 0u);
  EXPECT_NE(worker_trace, request.context().trace_id);
}

TEST_F(SpanTest, ParallelForWorkersJoinTraceViaHandOff) {
  // The OpenMP/parallel-region shape: capture the context once, hand it
  // into the region, one explicit-parent span per worker invocation.
  SpanContext parent_ctx;
  {
    Span solve("solve");
    parent_ctx = current_span_context();
    parallel_for(0, 8, [&](std::size_t) {
      Span chunk("solve.chunk", parent_ctx);
      (void)chunk;
    });
  }
  const auto spans = collect_spans();
  const auto* solve = find_span(spans, "solve");
  ASSERT_NE(solve, nullptr);
  u32 chunks = 0;
  for (const auto& s : spans)
    if (std::string(s.name) == "solve.chunk") {
      ++chunks;
      EXPECT_EQ(s.trace_id, solve->trace_id);
      EXPECT_EQ(s.parent_id, solve->span_id);
    }
  EXPECT_EQ(chunks, 8u);
}

TEST_F(SpanTest, RingWrapKeepsMostRecentSpans) {
  const std::size_t cap = span_ring_capacity();
  for (std::size_t i = 0; i < cap + 100; ++i) {
    Span s("wrap.filler");
    (void)s;
  }
  const auto spans = collect_spans();
  // This thread's ring is full but not overflowing; other threads may
  // have contributed a handful of spans in earlier tests (cleared in
  // SetUp, so only this loop's records remain).
  EXPECT_EQ(spans.size(), cap);
  // Oldest-first per ring: start times are monotone for one thread.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
}

TEST_F(SpanTest, ClearSpansEmptiesRings) {
  { Span s("to.clear"); }
  EXPECT_EQ(collect_spans().size(), 1u);
  clear_spans();
  EXPECT_TRUE(collect_spans().empty());
}

// --- end-to-end: the serve pipeline produces the documented tree -----

TEST_F(SpanTest, RecomputePublishYieldsSolverStageChildren) {
  graph::WebGenConfig gen;
  gen.num_sources = 60;
  gen.num_spam_sources = 4;
  gen.seed = 17;
  const auto corpus = graph::generate_web_corpus(gen);
  const core::SourceMap map = core::SourceMap::from_corpus(corpus);
  const core::SpamResilientSourceRank model(corpus.pages, map);

  serve::SnapshotStore store;
  serve::RecomputePipeline pipeline(model, corpus.source_hosts, store);
  {
    Span request("request.recompute");
    pipeline.submit(std::vector<f64>(model.num_sources(), 0.25), "test");
  }
  pipeline.drain();
  pipeline.stop();  // worker joined: its ring is quiescent

  const auto spans = collect_spans();
  const auto* request = find_span(spans, "request.recompute");
  const auto* recompute = find_span(spans, "serve.recompute");
  const auto* build = find_span(spans, "serve.snapshot_build");
  const auto* plan = find_span(spans, "core.throttle_plan");
  const auto* solve = find_span(spans, "core.solve");
  const auto* power = find_span(spans, "rank.power.solve");
  ASSERT_TRUE(request && recompute && build && plan && solve && power);

  // One causal tree: request -> serve.recompute -> serve.snapshot_build
  // -> {core.throttle_plan, core.solve -> rank.power.solve}.
  EXPECT_EQ(recompute->trace_id, request->trace_id);
  EXPECT_EQ(recompute->parent_id, request->span_id);
  EXPECT_EQ(build->parent_id, recompute->span_id);
  EXPECT_EQ(plan->parent_id, build->span_id);
  EXPECT_EQ(solve->parent_id, build->span_id);
  EXPECT_EQ(power->parent_id, solve->span_id);
  EXPECT_EQ(power->trace_id, request->trace_id);
}

TEST_F(SpanTest, QuerySpansAreRoots) {
  graph::WebGenConfig gen;
  gen.num_sources = 40;
  gen.num_spam_sources = 2;
  gen.seed = 23;
  const auto corpus = graph::generate_web_corpus(gen);
  const core::SourceMap map = core::SourceMap::from_corpus(corpus);
  const core::SpamResilientSourceRank model(corpus.pages, map);

  serve::SnapshotStore store;
  serve::RecomputePipeline pipeline(model, corpus.source_hosts, store);
  pipeline.submit(std::vector<f64>(model.num_sources(), 0.0), "baseline");
  pipeline.drain();
  pipeline.stop();
  clear_spans();  // only the queries below remain

  const serve::QueryEngine engine(store);
  (void)engine.score(NodeId{0});
  (void)engine.top_k(5);

  const auto spans = collect_spans();
  const auto* score = find_span(spans, "serve.query.score");
  const auto* top_k = find_span(spans, "serve.query.top_k");
  ASSERT_TRUE(score && top_k);
  EXPECT_EQ(score->parent_id, 0u);
  EXPECT_EQ(top_k->parent_id, 0u);
  EXPECT_NE(score->trace_id, top_k->trace_id);  // independent requests
}

}  // namespace
}  // namespace srsr::obs
