// Tests for rank-space metrics (metrics/ranking.hpp).
#include "metrics/ranking.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace srsr::metrics {
namespace {

TEST(RanksByScore, DescendingCompetitionRanks) {
  const std::vector<f64> scores{0.1, 0.5, 0.3};
  const auto ranks = ranks_by_score(scores);
  EXPECT_EQ(ranks[1], 1u);
  EXPECT_EQ(ranks[2], 2u);
  EXPECT_EQ(ranks[0], 3u);
}

TEST(RanksByScore, TiesShareSmallestRank) {
  const std::vector<f64> scores{0.5, 0.5, 0.1, 0.5};
  const auto ranks = ranks_by_score(scores);
  EXPECT_EQ(ranks[0], 1u);
  EXPECT_EQ(ranks[1], 1u);
  EXPECT_EQ(ranks[3], 1u);
  EXPECT_EQ(ranks[2], 4u);  // competition ranking: 1,1,1,4
}

TEST(PercentileOf, ExtremesAndMiddle) {
  const std::vector<f64> scores{0.1, 0.2, 0.3, 0.4, 0.5};
  EXPECT_DOUBLE_EQ(percentile_of(scores, 4), 100.0);
  EXPECT_DOUBLE_EQ(percentile_of(scores, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of(scores, 2), 50.0);
}

TEST(PercentileOf, SingletonIsTop) {
  const std::vector<f64> one{0.7};
  EXPECT_DOUBLE_EQ(percentile_of(one, 0), 100.0);
}

TEST(PercentileOf, OutOfRangeThrows) {
  const std::vector<f64> scores{0.1};
  EXPECT_THROW(percentile_of(scores, 1), Error);
}

TEST(EqualCountBuckets, EvenSplit) {
  // 8 nodes, 4 buckets: descending score order fills bucket 0 first.
  std::vector<f64> scores(8);
  for (int i = 0; i < 8; ++i) scores[i] = 8.0 - i;  // node 0 highest
  const auto b = equal_count_buckets(scores, 4);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 0u);
  EXPECT_EQ(b[2], 1u);
  EXPECT_EQ(b[7], 3u);
}

TEST(EqualCountBuckets, UnevenSplitFrontLoaded) {
  // 7 nodes, 3 buckets -> sizes 3, 2, 2.
  std::vector<f64> scores(7);
  for (int i = 0; i < 7; ++i) scores[i] = 7.0 - i;
  const auto b = equal_count_buckets(scores, 3);
  u32 counts[3] = {0, 0, 0};
  for (const u32 x : b) ++counts[x];
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(EqualCountBuckets, RejectsBadArguments) {
  const std::vector<f64> scores{1.0, 2.0};
  EXPECT_THROW(equal_count_buckets(scores, 0), Error);
  EXPECT_THROW(equal_count_buckets(scores, 3), Error);
}

TEST(BucketOccupancy, CountsMarkedPerBucket) {
  const std::vector<u32> buckets{0, 0, 1, 1, 2};
  const std::vector<NodeId> marked{0, 2, 3};
  const auto occ = bucket_occupancy(buckets, marked, 3);
  EXPECT_EQ(occ[0], 1u);
  EXPECT_EQ(occ[1], 2u);
  EXPECT_EQ(occ[2], 0u);
}

TEST(BucketOccupancy, TotalEqualsMarkedCount) {
  const std::vector<u32> buckets{0, 1, 2, 0, 1};
  const std::vector<NodeId> marked{0, 1, 2, 3, 4};
  const auto occ = bucket_occupancy(buckets, marked, 3);
  EXPECT_EQ(occ[0] + occ[1] + occ[2], 5u);
}

TEST(KendallTau, IdenticalOrderIsOne) {
  const std::vector<f64> a{0.4, 0.3, 0.2, 0.1};
  EXPECT_NEAR(kendall_tau(a, a), 1.0, 1e-12);
}

TEST(KendallTau, ReversedOrderIsMinusOne) {
  const std::vector<f64> a{0.4, 0.3, 0.2, 0.1};
  const std::vector<f64> b{0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(kendall_tau(a, b), -1.0, 1e-12);
}

TEST(KendallTau, OneSwapOnFourItems) {
  // One adjacent transposition among 6 pairs: tau = 1 - 2/6.
  const std::vector<f64> a{4, 3, 2, 1};
  const std::vector<f64> b{4, 3, 1, 2};
  EXPECT_NEAR(kendall_tau(a, b), 1.0 - 2.0 / 6.0, 1e-12);
}

TEST(KendallTau, SizeMismatchThrows) {
  const std::vector<f64> a{1, 2};
  const std::vector<f64> b{1};
  EXPECT_THROW(kendall_tau(a, b), Error);
}

TEST(SpearmanFootrule, ZeroForIdenticalRanks) {
  const std::vector<f64> a{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(spearman_footrule(a, a), 0.0);
}

TEST(SpearmanFootrule, OneForReversedEvenN) {
  const std::vector<f64> a{4, 3, 2, 1};
  const std::vector<f64> b{1, 2, 3, 4};
  EXPECT_NEAR(spearman_footrule(a, b), 1.0, 1e-12);
}

TEST(TopKOverlap, FullAndEmptyOverlap) {
  const std::vector<f64> a{0.9, 0.8, 0.1, 0.05};
  const std::vector<f64> b{0.7, 0.9, 0.2, 0.01};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 1.0);  // {0,1} both
  const std::vector<f64> c{0.05, 0.1, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(top_k_overlap(a, c, 2), 0.0);
}

TEST(TopKOverlap, PartialOverlap) {
  const std::vector<f64> a{0.9, 0.8, 0.7, 0.1};
  const std::vector<f64> b{0.9, 0.1, 0.7, 0.8};
  // top-2(a) = {0,1}; top-2(b) = {0,3} -> overlap 1/2.
  EXPECT_DOUBLE_EQ(top_k_overlap(a, b, 2), 0.5);
}

TEST(TopKOverlap, RejectsBadK) {
  const std::vector<f64> a{1.0};
  EXPECT_THROW(top_k_overlap(a, a, 0), Error);
  EXPECT_THROW(top_k_overlap(a, a, 2), Error);
}

TEST(Percentile, MovesWithScoreManipulation) {
  // The Fig. 6/7 measurement pattern: raising a node's score raises its
  // percentile monotonically.
  std::vector<f64> scores(100);
  for (int i = 0; i < 100; ++i) scores[i] = static_cast<f64>(i);
  const f64 before = percentile_of(scores, 10);
  scores[10] = 75.5;
  const f64 after = percentile_of(scores, 10);
  EXPECT_NEAR(before, 10.0 * 100.0 / 99.0, 1e-9);
  EXPECT_GT(after, before + 60.0);
}

}  // namespace
}  // namespace srsr::metrics
