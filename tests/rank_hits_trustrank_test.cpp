// Tests for the HITS and TrustRank baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "rank/hits.hpp"
#include "rank/trustrank.hpp"
#include "util/rng.hpp"

namespace srsr::rank {
namespace {

TEST(Hits, EmptyGraph) {
  const auto r = hits(graph::Graph());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.authorities.empty());
}

TEST(Hits, StarAuthorityIsTheHubTarget) {
  // Leaves 1..n-1 point at node 0: node 0 is the authority, the leaves
  // are the hubs.
  const auto r = hits(graph::star(6, /*bidirectional=*/false));
  ASSERT_TRUE(r.converged);
  for (NodeId leaf = 1; leaf < 6; ++leaf) {
    EXPECT_GT(r.authorities[0], r.authorities[leaf]);
    EXPECT_GT(r.hubs[leaf], r.hubs[0]);
  }
}

TEST(Hits, ScoresAreL2Normalized) {
  Pcg32 rng(61);
  const auto g = graph::erdos_renyi(60, 0.08, rng);
  const auto r = hits(g);
  f64 sa = 0.0, sh = 0.0;
  for (const f64 v : r.authorities) sa += v * v;
  for (const f64 v : r.hubs) sh += v * v;
  EXPECT_NEAR(std::sqrt(sa), 1.0, 1e-9);
  EXPECT_NEAR(std::sqrt(sh), 1.0, 1e-9);
}

TEST(Hits, ScoresAreNonNegative) {
  Pcg32 rng(62);
  const auto g = graph::erdos_renyi(40, 0.1, rng);
  const auto r = hits(g);
  for (const f64 v : r.authorities) EXPECT_GE(v, 0.0);
  for (const f64 v : r.hubs) EXPECT_GE(v, 0.0);
}

TEST(Hits, CompleteGraphIsUniform) {
  const auto r = hits(graph::complete(5));
  for (const f64 v : r.authorities) EXPECT_NEAR(v, 1.0 / std::sqrt(5.0), 1e-7);
  for (const f64 v : r.hubs) EXPECT_NEAR(v, 1.0 / std::sqrt(5.0), 1e-7);
}

TEST(Hits, LinkFarmInflatesAuthority) {
  // The very vulnerability the paper cites: tau farm pages pointing at
  // a target raise its HITS authority *relative to a legitimate
  // authority* (scores are L2-normalized, so compare ratios).
  auto background = [](graph::GraphBuilder& b) {
    b.add_edge(1, 0);  // target 0 has one organic endorsement
    for (NodeId u = 2; u < 8; ++u) b.add_edge(u, 9);  // node 9 is the
                                                      // legit authority
  };
  graph::GraphBuilder clean_b(30);
  background(clean_b);
  const auto clean = hits(clean_b.build());
  graph::GraphBuilder spam_b(30);
  background(spam_b);
  for (NodeId farm = 10; farm < 30; ++farm) spam_b.add_edge(farm, 0);
  const auto spammed = hits(spam_b.build());
  EXPECT_GT(spammed.authorities[0] / spammed.authorities[9],
            clean.authorities[0] / clean.authorities[9]);
}

TEST(TrustRank, SeedsGetHighTrust) {
  // Chain 0 -> 1 -> 2 -> 3; trust seeded at 0 decays along the chain.
  const auto g = graph::path(4);
  const auto r = trustrank(g, {0});
  EXPECT_GT(r.scores[0], r.scores[2]);
  EXPECT_GT(r.scores[1], r.scores[2]);
}

TEST(TrustRank, TrustPropagatesForward) {
  // Node unreachable from the seed gets only dangling-redistribution
  // crumbs, far below the seed's own score.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);  // 2 is isolated
  const auto r = trustrank(b.build(), {0});
  EXPECT_GT(r.scores[0], r.scores[2]);
  EXPECT_GT(r.scores[1], r.scores[2]);
}

TEST(TrustRank, MultipleSeedsShareTeleport) {
  const auto g = graph::cycle(6);
  const auto r = trustrank(g, {0, 3});
  EXPECT_NEAR(r.scores[0], r.scores[3], 1e-9);
  EXPECT_NEAR(r.scores[1], r.scores[4], 1e-9);
}

TEST(TrustRank, RejectsEmptyOrBadSeeds) {
  const auto g = graph::cycle(3);
  EXPECT_THROW(trustrank(g, {}), Error);
  EXPECT_THROW(trustrank(g, {7}), Error);
}

TEST(TrustRank, ScoresFormDistribution) {
  Pcg32 rng(63);
  const auto g = graph::erdos_renyi(80, 0.06, rng);
  const auto r = trustrank(g, {0, 1, 2});
  f64 sum = 0.0;
  for (const f64 v : r.scores) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace srsr::rank
