// Tests for the JSON emission helpers (obs/json.hpp) and the RunReport
// write discipline (obs/report.hpp): escaping of quotes, backslashes,
// control characters and non-ASCII bytes, number round-tripping, and
// the temp-file + atomic-rename failure path — a write that cannot
// complete must throw and leave the previously written report intact.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "obs/report.hpp"
#include "util/check.hpp"

namespace srsr::obs {
namespace {

// --- json::quote -----------------------------------------------------

TEST(JsonQuote, PlainTextPassesThroughQuoted) {
  EXPECT_EQ(json::quote("hello"), "\"hello\"");
  EXPECT_EQ(json::quote(""), "\"\"");
}

TEST(JsonQuote, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json::quote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(json::quote("C:\\path\\file"), "\"C:\\\\path\\\\file\"");
}

TEST(JsonQuote, EscapesNamedControlCharacters) {
  EXPECT_EQ(json::quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json::quote("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(json::quote("a\tb"), "\"a\\tb\"");
}

TEST(JsonQuote, EscapesRemainingControlCharactersAsUnicode) {
  EXPECT_EQ(json::quote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
  EXPECT_EQ(json::quote(std::string("x\x1f") + "y"), "\"x\\u001fy\"");
  // Embedded NUL must not truncate the string.
  EXPECT_EQ(json::quote(std::string("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(JsonQuote, NonAsciiBytesPassThroughAsUtf8) {
  // UTF-8 payloads are legal inside JSON strings byte-for-byte; the
  // escaper must not mangle multi-byte sequences into \u escapes.
  const std::string host = "h\xC3\xB6st.example";  // "höst"
  EXPECT_EQ(json::quote(host), "\"" + host + "\"");
}

// --- json::number / json::boolean ------------------------------------

TEST(JsonNumber, RoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(json::number(2.0), "2");
  EXPECT_EQ(json::number(0.25), "0.25");
  EXPECT_EQ(json::number(std::numeric_limits<f64>::quiet_NaN()), "null");
  EXPECT_EQ(json::number(std::numeric_limits<f64>::infinity()), "null");
  EXPECT_EQ(json::number(u64{18446744073709551615ull}),
            "18446744073709551615");
  EXPECT_EQ(json::boolean(true), "true");
  EXPECT_EQ(json::boolean(false), "false");
}

// --- RunReport escaping end to end -----------------------------------

TEST(RunReport, MetaValuesAreEscapedInJson) {
  RunReport report("escaping");
  report.set_meta("note", std::string("line1\nline2 \"quoted\""));
  const std::string json = report.to_json();
  EXPECT_NE(json.find("line1\\nline2 \\\"quoted\\\""), std::string::npos);
  // The raw newline must NOT appear inside the document.
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
}

// --- RunReport::write failure path -----------------------------------

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(RunReportWrite, WritesAtomicallyAndLeavesNoTempFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "srsr_report_test";
  fs::remove_all(dir);
  const fs::path path = dir / "nested" / "report.json";

  RunReport report("atomic");
  report.set_meta("k", u64{1});
  report.write(path.string());

  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  EXPECT_NE(slurp(path).find("\"name\":\"atomic\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(RunReportWrite, FailedWriteKeepsOldReportIntact) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "srsr_report_fail";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "report.json";

  RunReport first("first");
  first.set_meta("generation", u64{1});
  first.write(path.string());
  const std::string original = slurp(path);
  ASSERT_NE(original.find("\"first\""), std::string::npos);

  // Block the temp slot with a directory: the tests run as root, so
  // permission bits cannot make the directory unwritable — a path
  // collision forces the same failure mode (the temp file cannot be
  // opened) regardless of privilege.
  fs::create_directories(path.string() + ".tmp");
  RunReport second("second");
  second.set_meta("generation", u64{2});
  EXPECT_THROW(second.write(path.string()), Error);

  // The old report is byte-identical: the failed write never touched it.
  EXPECT_EQ(slurp(path), original);
  fs::remove_all(dir);
}

TEST(RunReportWrite, RenameFailureCleansTempAndKeepsTarget) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "srsr_report_rename";
  fs::remove_all(dir);
  // The destination is a non-empty directory: the temp file writes
  // fine, but the final rename cannot replace a directory — the other
  // half of the failure path.
  const fs::path path = dir / "report.json";
  fs::create_directories(path / "blocker");

  RunReport report("blocked");
  EXPECT_THROW(report.write(path.string()), Error);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));  // cleaned up
  EXPECT_TRUE(fs::is_directory(path));               // target untouched
  fs::remove_all(dir);
}

}  // namespace
}  // namespace srsr::obs
