// Tests for the sharded solve path: sigma parity with the monolithic
// solvers across shard counts / partitioners / schedules / solver
// kinds, the K = 1 bitwise-identity contract, operator-level pull
// parity, and the incremental (dirty-shard) mode's correctness and
// O(changed shards) work bound.
#include "core/srsr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "graph/builder.hpp"
#include "graph/webgen.hpp"
#include "rank/sharded_solve.hpp"

namespace srsr::core {
namespace {

graph::WebCorpus small_corpus(u64 seed = 2024, u32 sources = 200,
                              u32 spam = 10) {
  graph::WebGenConfig cfg;
  cfg.num_sources = sources;
  cfg.num_spam_sources = spam;
  cfg.seed = seed;
  return graph::generate_web_corpus(cfg);
}

/// Solves tight (1e-12) so every schedule's iterate sits well within
/// the 1e-10 parity gate of the true fixed point (the async sweep
/// follows a different iterate path, so at looser tolerances its final
/// iterate legitimately differs from the monolithic one by more than
/// the gate while both are "converged").
SrsrConfig tight_config() {
  SrsrConfig cfg;
  cfg.convergence.tolerance = 1e-12;
  cfg.convergence.max_iterations = 5000;
  return cfg;
}

std::vector<f64> ramp_kappa(u32 sources, f64 scale) {
  // Deterministic non-uniform throttling: every 7th source throttled,
  // strength ramping with the id.
  std::vector<f64> kappa(sources, 0.0);
  for (u32 s = 0; s < sources; s += 7)
    kappa[s] = scale * static_cast<f64>(s % 10) / 10.0;
  return kappa;
}

f64 max_abs_diff(const std::vector<f64>& a, const std::vector<f64>& b) {
  EXPECT_EQ(a.size(), b.size());
  f64 m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(ShardedRank, ParityAcrossAllConfigurations) {
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  const std::vector<std::vector<f64>> kappas = {
      std::vector<f64>(200, 0.0), ramp_kappa(200, 0.5), ramp_kappa(200, 1.0)};

  for (const auto solver : {SolverKind::kPower, SolverKind::kJacobi}) {
    SrsrConfig mono_cfg = tight_config();
    mono_cfg.solver = solver;
    const SpamResilientSourceRank mono(corpus.pages, map, mono_cfg);
    std::vector<std::vector<f64>> reference;
    for (const auto& kappa : kappas)
      reference.push_back(mono.rank(kappa).scores);

    for (const u32 shards : {1u, 2u, 4u, 7u}) {
      for (const auto mode : {graph::PartitionMode::kHostHash,
                              graph::PartitionMode::kSccAware}) {
        for (const auto schedule : {rank::ShardSchedule::kBlockJacobi,
                                    rank::ShardSchedule::kAsyncSweep}) {
          SrsrConfig cfg = mono_cfg;
          cfg.sharding.shards = shards;
          cfg.sharding.partition = mode;
          cfg.sharding.schedule = schedule;
          const SpamResilientSourceRank model(corpus.pages, map, cfg);
          ASSERT_TRUE(model.sharded());
          ASSERT_EQ(model.num_shards(), shards);
          for (std::size_t c = 0; c < kappas.size(); ++c) {
            const auto r = model.rank(kappas[c]);
            EXPECT_TRUE(r.converged);
            EXPECT_LE(max_abs_diff(r.scores, reference[c]), 1e-10)
                << "shards=" << shards << " mode=" << static_cast<int>(mode)
                << " schedule=" << static_cast<int>(schedule) << " kappa=" << c;
          }
        }
      }
    }
  }
}

TEST(ShardedRank, WarmStartParity) {
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  const auto kappa_a = ramp_kappa(200, 0.4);
  const auto kappa_b = ramp_kappa(200, 0.6);

  const SpamResilientSourceRank mono(corpus.pages, map, tight_config());
  const auto ref_a = mono.rank(kappa_a);
  const auto ref_b = mono.rank(kappa_b, ref_a.scores);

  for (const auto schedule : {rank::ShardSchedule::kBlockJacobi,
                              rank::ShardSchedule::kAsyncSweep}) {
    SrsrConfig cfg = tight_config();
    cfg.sharding.shards = 4;
    cfg.sharding.partition = graph::PartitionMode::kSccAware;
    cfg.sharding.schedule = schedule;
    const SpamResilientSourceRank model(corpus.pages, map, cfg);
    const auto a = model.rank(kappa_a);
    const auto b = model.rank(kappa_b, a.scores);
    EXPECT_TRUE(b.converged);
    EXPECT_LT(b.iterations, ref_a.iterations);  // warm start pays off
    EXPECT_LE(max_abs_diff(b.scores, ref_b.scores), 1e-10);
  }
}

TEST(ShardedRank, SingleShardIsBitIdentical) {
  // The K = 1 contract: the sharded solve performs the exact FP
  // operation sequence of the monolithic path — same scores to the
  // bit, same iteration count — at the paper's own tolerance.
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  for (const auto solver : {SolverKind::kPower, SolverKind::kJacobi}) {
    SrsrConfig mono_cfg;
    mono_cfg.convergence.tolerance = 1e-9;
    mono_cfg.solver = solver;
    SrsrConfig shard_cfg = mono_cfg;
    shard_cfg.sharding.shards = 1;
    const SpamResilientSourceRank mono(corpus.pages, map, mono_cfg);
    const SpamResilientSourceRank one(corpus.pages, map, shard_cfg);
    for (const f64 scale : {0.0, 0.7}) {
      const auto kappa = ramp_kappa(200, scale);
      const auto a = mono.rank(kappa);
      const auto b = one.rank(kappa);
      ASSERT_EQ(a.scores.size(), b.scores.size());
      EXPECT_EQ(a.iterations, b.iterations);
      EXPECT_EQ(std::memcmp(a.scores.data(), b.scores.data(),
                            a.scores.size() * sizeof(f64)),
                0)
          << "K=1 diverged bitwise (solver=" << static_cast<int>(solver)
          << ", scale=" << scale << ")";
    }
  }
}

TEST(ShardedRank, OperatorPullMatchesMonolithicView) {
  // The global pull() of the ShardedOperator (gather -> per-shard
  // kernels -> scatter) must agree with the ThrottledView pull for the
  // same kappa to near machine precision.
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  SrsrConfig cfg = tight_config();
  cfg.sharding.shards = 4;
  cfg.sharding.partition = graph::PartitionMode::kHostHash;
  const SpamResilientSourceRank model(corpus.pages, map, cfg);
  const auto kappa = ramp_kappa(200, 0.8);

  const auto view = model.throttled_view(kappa);
  const auto op = model.sharded_view(kappa);
  std::vector<f64> x(model.num_sources());
  for (u32 s = 0; s < model.num_sources(); ++s)
    x[s] = 1.0 / (1.0 + static_cast<f64>(s));
  std::vector<f64> y_view(x.size()), y_shard(x.size());
  view.pull(x, y_view);
  op.pull(x, y_shard);
  EXPECT_LE(max_abs_diff(y_view, y_shard), 1e-15);
}

TEST(ShardedRank, InnerIterationsStillConverge) {
  // inner_iterations > 1 trades halo exchanges for local work; the
  // fixed point is unchanged (gate loosened to 1e-8: inner iterations
  // against frozen halos walk a different path to the same limit).
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  const SpamResilientSourceRank mono(corpus.pages, map, tight_config());
  const auto kappa = ramp_kappa(200, 0.5);
  const auto ref = mono.rank(kappa);

  SrsrConfig cfg = tight_config();
  cfg.sharding.shards = 4;
  cfg.sharding.partition = graph::PartitionMode::kSccAware;
  cfg.sharding.inner_iterations = 3;
  const SpamResilientSourceRank model(corpus.pages, map, cfg);
  const auto r = model.rank(kappa);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(max_abs_diff(r.scores, ref.scores), 1e-8);
}

TEST(ShardedRank, AllDirtyMaskMatchesFullSolve) {
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  SrsrConfig cfg = tight_config();
  cfg.sharding.shards = 4;
  const SpamResilientSourceRank model(corpus.pages, map, cfg);
  const auto kappa = ramp_kappa(200, 0.5);
  const auto full = model.rank(kappa);

  const std::vector<u8> all_dirty(4, 1);
  ShardedRankOptions opts;
  opts.dirty_shards = all_dirty;
  rank::ShardedSolveStats stats;
  opts.stats = &stats;
  const auto r = model.rank_sharded(kappa, {}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(max_abs_diff(r.scores, full.scores), 1e-10);
  EXPECT_EQ(stats.dirty_shards, 4u);
}

TEST(ShardedRank, AllCleanMaskConvergesImmediately) {
  // A converged warm start plus an all-clean mask is the serve layer's
  // "nothing changed" republish: zero iterations, zero shard updates.
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  SrsrConfig cfg = tight_config();
  cfg.sharding.shards = 4;
  const SpamResilientSourceRank model(corpus.pages, map, cfg);
  const auto kappa = ramp_kappa(200, 0.5);
  const auto full = model.rank(kappa);

  const std::vector<u8> clean(4, 0);
  ShardedRankOptions opts;
  opts.dirty_shards = clean;
  rank::ShardedSolveStats stats;
  opts.stats = &stats;
  const auto r = model.rank_sharded(kappa, full.scores, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(stats.shard_updates, 0u);
  EXPECT_LE(max_abs_diff(r.scores, full.scores), 1e-12);
}

/// Two disconnected 3-cycles of sources (pages 0..2 / 3..5, one page
/// per source): a kappa change confined to one component cannot affect
/// the other, making the O(changed shards) bound exact.
struct DisconnectedModel {
  graph::Graph pages;
  SourceMap map;

  DisconnectedModel()
      : pages(build_pages()), map(SourceMap::identity(6)) {}

  static graph::Graph build_pages() {
    graph::GraphBuilder b(6);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 0);
    b.add_edge(3, 4);
    b.add_edge(4, 5);
    b.add_edge(5, 3);
    return b.build();
  }
};

TEST(ShardedRank, DirtyShardSolveIsOChangedShards) {
  const DisconnectedModel dm;
  SrsrConfig cfg = tight_config();
  cfg.sharding.shards = 2;
  // kSccAware bands the two 3-cycles into different shards (two SCCs,
  // equal node count).
  cfg.sharding.partition = graph::PartitionMode::kSccAware;
  const SpamResilientSourceRank model(dm.pages, dm.map, cfg);
  ASSERT_EQ(model.num_shards(), 2u);

  std::vector<f64> kappa(6, 0.0);
  const auto base = model.rank(kappa);

  // Throttle one source of the shard-1 component only.
  const u32 changed_shard = model.shard_plan().shard_of(4);
  kappa[4] = 0.9;
  const auto full = model.rank(kappa);

  std::vector<u8> dirty(2, 0);
  dirty[changed_shard] = 1;
  ShardedRankOptions opts;
  opts.dirty_shards = dirty;
  rank::ShardedSolveStats stats;
  opts.stats = &stats;
  const auto r = model.rank_sharded(kappa, base.scores, opts);

  EXPECT_TRUE(r.converged);
  EXPECT_LE(max_abs_diff(r.scores, full.scores), 1e-10);
  // The clean shard never re-iterated: all updates charged to the
  // dirty shard (O(changed shards), not O(K)).
  EXPECT_EQ(stats.dirty_shards, 1u);
  EXPECT_EQ(stats.activated_shards, 1u);
  EXPECT_EQ(stats.shard_updates, static_cast<u64>(stats.rounds));
  ASSERT_EQ(stats.updated.size(), 2u);
  EXPECT_EQ(stats.updated[1 - changed_shard], 0u);
  EXPECT_NE(stats.updated[changed_shard], 0u);
}

TEST(ShardedRank, ActivationToleranceContainsHaloRipple) {
  // On a connected graph a dirty shard's new scores perturb its
  // neighbors through the halo; a loose activation tolerance keeps the
  // ripple from re-activating every shard while still landing within
  // that tolerance of the full solution.
  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  SrsrConfig cfg = tight_config();
  cfg.sharding.shards = 4;
  cfg.sharding.partition = graph::PartitionMode::kSccAware;
  const SpamResilientSourceRank model(corpus.pages, map, cfg);

  std::vector<f64> kappa(200, 0.0);
  const auto base = model.rank(kappa);
  kappa[7] = 0.3;  // one throttled source
  const auto full = model.rank(kappa);

  std::vector<u8> dirty(4, 0);
  dirty[model.shard_plan().shard_of(7)] = 1;
  ShardedRankOptions opts;
  opts.dirty_shards = dirty;
  opts.activation_tolerance = 1e-6;
  rank::ShardedSolveStats stats;
  opts.stats = &stats;
  const auto r = model.rank_sharded(kappa, base.scores, opts);

  EXPECT_TRUE(r.converged);
  // Within the activation tolerance of the exact answer (ripple
  // truncated below 1e-6 per boundary hop, amplified at most by the
  // 1/(1-alpha) mass multiplier).
  EXPECT_LE(max_abs_diff(r.scores, full.scores), 1e-4);
  EXPECT_LT(stats.shard_updates,
            static_cast<u64>(stats.rounds) * model.num_shards());
}

TEST(ShardedRank, ExecutorMatchesSerial) {
  // Block-Jacobi results must not depend on the executor (disjoint
  // per-shard state). Exercised with a pool via the serve layer in
  // serve_shard_recompute_test; here: a fake executor that reverses
  // task order.
  class ReverseExecutor final : public rank::ShardExecutor {
   public:
    void run(u32 tasks, const std::function<void(u32)>& fn) override {
      for (u32 t = tasks; t > 0; --t) fn(t - 1);
    }
  };

  const auto corpus = small_corpus();
  const SourceMap map = SourceMap::from_corpus(corpus);
  SrsrConfig cfg = tight_config();
  cfg.sharding.shards = 4;
  const SpamResilientSourceRank model(corpus.pages, map, cfg);
  const auto kappa = ramp_kappa(200, 0.5);

  const auto serial = model.rank(kappa);
  ReverseExecutor exec;
  ShardedRankOptions opts;
  opts.executor = &exec;
  const auto reversed = model.rank_sharded(kappa, {}, opts);
  ASSERT_EQ(serial.scores.size(), reversed.scores.size());
  EXPECT_EQ(std::memcmp(serial.scores.data(), reversed.scores.data(),
                        serial.scores.size() * sizeof(f64)),
            0);
}

}  // namespace
}  // namespace srsr::core
